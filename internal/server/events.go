package server

// The label-event stream: the shard-side half of the hybrid learning loop
// (internal/hybrid). A shard with a sink attached reports three kinds of
// durable label activity — feature-carrying tasks entering the queue,
// human answers landing, and tasks finalizing (by quorum or by a model
// decision). Events are assembled under the shard lock but the sink is
// always invoked after the lock is released (the record-after-unlock
// pattern the latency sketches use), so a sink can never extend a shard's
// critical section or deadlock by calling back into the shard.
//
// Journal replay never emits events: recovery rebuilds state silently and
// the learning plane re-seeds itself from SeedLabelEvents, so a crash
// cannot double-train the model.

// LabelEventKind classifies one label-stream observation.
type LabelEventKind int

const (
	// LabelEnqueued: a feature-carrying task entered the queue. Only tasks
	// with feature vectors are announced — the learning plane has nothing
	// to learn from payloads it cannot featurize.
	LabelEnqueued LabelEventKind = iota + 1
	// LabelAnswered: a human answer was accepted toward a task's quorum.
	LabelAnswered
	// LabelFinalized: the task completed — by human quorum (ByModel false,
	// Labels = the majority consensus) or by a model auto-finalize decision
	// (ByModel true, Labels = the model's answer).
	LabelFinalized
)

// LabelEvent is one observation on a shard's label stream.
type LabelEvent struct {
	Kind LabelEventKind
	Task int

	// The task's shape, on Enqueued and Finalized events both (the plane
	// keys learners by shape, so finalized events must be self-contained).
	// Features aliases the spec — consumers must not mutate it.
	Features [][]float64
	Classes  int
	Records  int
	Priority int

	// Finalized: the consensus labels and provenance; Answers is the human
	// answers on the books at finalization.
	Labels  []int
	ByModel bool
	Answers int
}

// SetLabelSink attaches (or, with nil, detaches) the shard's label-stream
// sink. The sink is called after the shard lock is released, one event at
// a time, in the shard's serialization order.
func (s *Shard) SetLabelSink(sink func(LabelEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.labelSink = sink
}

// SeedLabelEvents re-creates the label stream implied by the shard's
// current state: an Enqueued event for every live feature-carrying task,
// followed by a Finalized event when it already completed. A learning
// plane attached after recovery replays these to rebuild its training set
// and candidate pool (retained tallies are skipped — their payloads and
// features are gone, so there is nothing left to learn from).
func (s *Shard) SeedLabelEvents() []LabelEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []LabelEvent
	for _, tid := range s.order {
		u, ok := s.tasks[tid]
		if !ok || len(u.spec.Features) == 0 {
			continue
		}
		out = append(out, LabelEvent{
			Kind: LabelEnqueued, Task: u.id,
			Features: u.spec.Features, Classes: u.spec.Classes,
			Records: len(u.spec.Records), Priority: u.spec.Priority,
		})
		if u.done {
			out = append(out, s.finalizedEvent(u))
		}
	}
	return out
}

// finalizedEvent builds the Finalized event for a completed unit. Callers
// hold mu.
//
//clamshell:locked callers hold mu
func (s *Shard) finalizedEvent(u *workUnit) LabelEvent {
	labels := u.modelLabels
	if !u.model {
		labels = s.majority(u)
	}
	return LabelEvent{
		Kind: LabelFinalized, Task: u.id,
		Features: u.spec.Features, Classes: u.spec.Classes,
		Labels: labels, ByModel: u.model, Answers: len(u.answers),
		Records: len(u.spec.Records),
	}
}
