package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/clamshell/clamshell/internal/journal"
	"github.com/clamshell/clamshell/internal/metrics"
)

// Write-through journaling and recovery. A shard with an attached
// journal.Store appends one op per durable mutation while still holding its
// own lock, so the log is exactly the shard's serialization order. Recovery
// is the reverse: import the last compacted snapshot, replay the journal
// suffix, overlay the retained tallies. Compaction folds the two together
// periodically — it demotes completed tasks past the retention window to
// vote tallies, snapshots the remaining live state, and rotates the
// journal, so both the snapshot and the replay suffix stay O(live state)
// no matter how much history the shard has processed.

// logOp journals one durable mutation. Callers hold mu; the emission
// timestamp is stamped here unless the caller already pinned one (paths
// that also store the time in shard state pass the same instant, so replay
// reproduces timestamps bit-exactly).
func (s *Shard) logOp(op journal.Op) {
	if s.logf == nil {
		return
	}
	if op.At == 0 {
		op.At = s.cfg.Now().UnixNano()
	}
	s.logf(op)
}

// AttachJournal starts write-through journaling into the store. Attach
// after recovery, before the first live mutation.
func (s *Shard) AttachJournal(st *journal.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st == nil {
		s.logf = nil
		return
	}
	// The closure only ever runs via logOp, whose callers hold mu. Append
	// errors surface through the store's sticky Err, not per-op.
	//clamshell:locked logOp runs with the shard mutex held
	s.logf = func(op journal.Op) { _ = st.Append(op) }
}

// RecoverFrom rebuilds the shard from a store's recovered state —
// snapshot, then journal suffix, then retained-tally overlay — and attaches
// the store for write-through journaling of everything that follows.
func (s *Shard) RecoverFrom(st *journal.Store, rec journal.Recovered) error {
	state := SnapshotState{Version: SnapshotVersion}
	if rec.Snapshot != nil {
		var err error
		if state, err = DecodeSnapshot(rec.Snapshot); err != nil {
			return err
		}
	}
	s.ImportState(state)
	for _, op := range rec.Ops {
		s.applyOp(op)
	}
	tallies := make([]RetainedTask, 0, len(rec.Retained))
	for _, p := range rec.Retained {
		var t RetainedTask
		if err := json.Unmarshal(p, &t); err != nil {
			return fmt.Errorf("server: decoding retained tally: %w", err)
		}
		// The same shape invariants DecodeSnapshot enforces for the facade:
		// a checksummed-but-malformed tally (newer build, hand edit) must
		// fail recovery loudly, not panic a consensus read later.
		if err := validateTally(t); err != nil {
			return err
		}
		tallies = append(tallies, t)
	}
	s.absorbTallies(tallies)
	s.AttachJournal(st)
	return nil
}

// validateTally checks a retained tally's structural invariants (both
// shapes: full vote tallies and aged count-only aggregates).
func validateTally(t RetainedTask) error {
	if t.ID < 1 {
		return fmt.Errorf("server: retained tally id %d out of range", t.ID)
	}
	if t.Records < 1 {
		return fmt.Errorf("server: retained tally %d has no records", t.ID)
	}
	if t.Model && len(t.Consensus) != t.Records {
		return fmt.Errorf("server: model tally %d: consensus with %d labels, want %d",
			t.ID, len(t.Consensus), t.Records)
	}
	if t.Aged {
		if len(t.Answers) != 0 || len(t.Voters) != 0 {
			return fmt.Errorf("server: aged tally %d still carries %d answers",
				t.ID, len(t.Answers))
		}
		// A model-finalized task may have completed with zero human answers;
		// a human quorum cannot.
		if t.AnswerCount < 1 && !t.Model {
			return fmt.Errorf("server: aged tally %d has no answer count", t.ID)
		}
		if len(t.Consensus) != t.Records {
			return fmt.Errorf("server: aged tally %d: consensus with %d labels, want %d",
				t.ID, len(t.Consensus), t.Records)
		}
		return nil
	}
	if len(t.Answers) != len(t.Voters) {
		return fmt.Errorf("server: retained tally %d: %d answers but %d voters",
			t.ID, len(t.Answers), len(t.Voters))
	}
	for _, a := range t.Answers {
		if len(a) != t.Records {
			return fmt.Errorf("server: retained tally %d: answer with %d labels, want %d",
				t.ID, len(a), t.Records)
		}
	}
	return nil
}

// applyOp replays one journaled op onto the shard's durable state. Replay
// touches only what snapshots persist: tasks, answers, counters, the
// retired set and the ledger. Session-scoped ops (assign, leave) are
// audit-only — worker sessions never survive a restart, so their
// assignments fall back to the queue exactly as on snapshot restore. Ops
// referencing state the snapshot does not know (a corrupt or hand-edited
// journal) are skipped rather than trusted.
func (s *Shard) applyOp(op journal.Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op.T {
	case journal.OpSubmit:
		if op.Task < 1 || len(op.Records) == 0 {
			return
		}
		if _, ok := s.tasks[op.Task]; ok {
			return
		}
		if _, ok := s.tallies[op.Task]; ok {
			return
		}
		spec := TaskSpec{Records: op.Records, Classes: op.Classes, Quorum: op.Quorum, Priority: op.Priority}
		if len(op.Features) == len(op.Records) {
			spec.Features = op.Features
		}
		if spec.Quorum < 1 {
			spec.Quorum = 1
		}
		if spec.Classes < 2 {
			spec.Classes = 2
		}
		s.nextSeq++
		u := &workUnit{id: op.Task, seq: s.nextSeq, spec: spec, active: make(map[int]bool)}
		s.tasks[u.id] = u
		s.order = append(s.order, u.id)
		if op.Task > s.nextTask {
			s.nextTask = op.Task
		}
		s.reindex(u)
	case journal.OpJoin:
		if op.Worker > s.nextWorker {
			s.nextWorker = op.Worker
		}
	case journal.OpAnswer:
		if op.Terminated {
			s.terminated++
			s.costs.TerminatedPay += metrics.Cost(op.Pay)
			return
		}
		u, ok := s.tasks[op.Task]
		if !ok || u.done || s.answered(u, op.Worker) || len(op.Labels) != len(u.spec.Records) {
			return
		}
		s.costs.WorkPay += metrics.Cost(op.Pay)
		u.answers = append(u.answers, op.Labels)
		u.voters = append(u.voters, op.Worker)
		if len(u.answers) >= u.spec.Quorum {
			u.done = true
			u.doneAt = time.Unix(0, op.At)
		}
		s.reindex(u)
	case journal.OpAutoFinal:
		u, ok := s.tasks[op.Task]
		if !ok || u.done || len(op.Labels) != len(u.spec.Records) {
			return
		}
		for _, l := range op.Labels {
			if l < 0 || l >= u.spec.Classes {
				return
			}
		}
		u.done = true
		u.model = true
		u.modelLabels = op.Labels
		u.doneAt = time.Unix(0, op.At)
		s.autoFinalized++
		s.reindex(u)
	case journal.OpRepri:
		u, ok := s.tasks[op.Task]
		if !ok || u.done {
			return
		}
		s.repriLocked(u, op.Priority)
	case journal.OpRetire:
		if op.Worker >= 1 && !s.retired[op.Worker] {
			s.retired[op.Worker] = true
			s.retiredCount++
		}
	case journal.OpWaitPay:
		s.costs.WaitPay += metrics.Cost(op.Pay)
	}
}

// absorbTallies overlays retained tallies recovered from the store. A
// tally is the frozen, durable record of a demoted task: if a snapshot/
// journal rewind resurrected the same task in full (a crash landed between
// the tally write and the manifest commit), the tally supersedes it, so a
// task is never counted twice. Ids missing from the order slice are merged
// in with one linear pass — per-shard ids are allocated monotonically, so
// id order is submission order — keeping recovery O(order + tallies) even
// with a long retained history.
func (s *Shard) absorbTallies(tallies []RetainedTask) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var inserts []int
	for i := range tallies {
		t := &tallies[i]
		if u, ok := s.tasks[t.ID]; ok {
			if u.dstate != dispatchNone {
				s.dispatch[u.dstate-1].remove(u)
				u.dstate = dispatchNone
			}
			delete(s.tasks, t.ID)
		} else if _, ok := s.tallies[t.ID]; !ok {
			inserts = append(inserts, t.ID)
		}
		s.tallies[t.ID] = t
		s.enqueueForAging(t)
		if t.ID > s.nextTask {
			s.nextTask = t.ID
		}
	}
	if len(inserts) == 0 {
		return
	}
	sort.Ints(inserts)
	merged := make([]int, 0, len(s.order)+len(inserts))
	j := 0
	for _, tid := range s.order {
		for j < len(inserts) && inserts[j] < tid {
			merged = append(merged, inserts[j])
			j++
		}
		if j < len(inserts) && inserts[j] == tid {
			j++ // already present
		}
		merged = append(merged, tid)
	}
	merged = append(merged, inserts[j:]...)
	s.order = merged
}

// demoteLocked moves completed tasks older than the retention window from
// the live task table to the tally map, marking each tally dirty — not yet
// in a store's retained log. Tasks with straggler assignments still in
// flight are left for a later pass. Callers hold mu.
func (s *Shard) demoteLocked(retention time.Duration) {
	if retention <= 0 {
		return
	}
	cutoff := s.cfg.Now().Add(-retention)
	// Scan the live map, not the order slice: once history is demoted the
	// pass is O(live tasks) no matter how long the shard has run.
	for tid, u := range s.tasks {
		if !u.done || len(u.active) > 0 {
			continue
		}
		if u.doneAt.IsZero() || u.doneAt.After(cutoff) {
			continue
		}
		t := &RetainedTask{
			ID:      u.id,
			Records: len(u.spec.Records),
			Classes: u.spec.Classes,
			Answers: u.answers,
			Voters:  u.voters,
			DoneAt:  u.doneAt.UnixNano(),
		}
		if u.model {
			// A model-finalized task's served consensus is the model's
			// answer, not a vote majority — store it so the tally keeps the
			// same /api/result view (and provenance) the live task had.
			t.Model = true
			t.Consensus = u.modelLabels
		}
		s.tallies[tid] = t
		s.talliesDirty[tid] = t
		s.enqueueForAging(t)
		delete(s.tasks, tid)
	}
}

// enqueueForAging files a freshly retained tally for the aging pass. Only
// tallies that can ever age are queued: aging must be enabled and the tally
// must carry a completion time (legacy tallies without one never age).
// Callers hold mu.
func (s *Shard) enqueueForAging(t *RetainedTask) {
	if s.cfg.TallyHorizon <= 0 || t.Aged || t.DoneAt == 0 {
		return
	}
	s.agePending = append(s.agePending, t)
}

// ageTalliesLocked ages retained tallies whose completion is past the
// horizon into count-only aggregates: consensus and answer count frozen,
// per-voter vectors dropped, tally re-marked dirty so the next commit
// appends the aged record (recovery's last-wins overlay supersedes the full
// one). The pass scans only the pending queue — tallies inside the horizon
// window — keeping it O(recent), not O(history). Callers hold mu.
func (s *Shard) ageTalliesLocked() {
	if s.cfg.TallyHorizon <= 0 || len(s.agePending) == 0 {
		return
	}
	cutoff := s.cfg.Now().Add(-s.cfg.TallyHorizon).UnixNano()
	keep := s.agePending[:0]
	for _, t := range s.agePending {
		if s.tallies[t.ID] != t || t.Aged {
			continue // superseded by an import or overlay; drop from the queue
		}
		if t.DoneAt > cutoff {
			keep = append(keep, t)
			continue
		}
		// Model tallies already carry their consensus (the model's answer);
		// aging must not overwrite it with a vote majority.
		if !t.Model {
			t.Consensus = majorityOf(t.Answers, t.Records)
		}
		t.AnswerCount = len(t.Answers)
		t.Answers = nil
		t.Voters = nil
		t.Aged = true
		s.talliesAged++
		s.talliesDirty[t.ID] = t
	}
	for i := len(keep); i < len(s.agePending); i++ {
		s.agePending[i] = nil
	}
	s.agePending = keep
}

// CompactInto runs one compaction cycle against the store: demote
// completed tasks past the retention window, snapshot the live state, and
// rotate the journal — all captured atomically under the shard lock — then
// commit the snapshot off the lock. The commit carries every dirty tally —
// newly demoted ones plus any left over from a failed cycle or brought in
// by ImportState — and the dirty marks clear only on success, so a tally
// can never fall between a failed commit and the next generation's
// cleanup. After a successful commit the previous generation's journal is
// gone and recovery cost is O(live state + new ops). retention <= 0 keeps
// full task history (only the journal is truncated). Cycles against one
// store must not overlap; the fabric serializes them.
func (s *Shard) CompactInto(st *journal.Store, retention time.Duration) error {
	s.mu.Lock()
	s.demoteLocked(retention)
	s.ageTalliesLocked()
	nTallies := len(s.tallies)
	dirty := make([]*RetainedTask, 0, len(s.talliesDirty))
	for _, t := range s.talliesDirty {
		dirty = append(dirty, t)
	}
	// Deterministic retained-log append order (ids are submission order).
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].ID < dirty[j].ID })
	live := s.exportLocked(false)
	gen, err := st.Rotate()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	data, err := EncodeSnapshot(live)
	if err != nil {
		return err
	}
	payloads := make([][]byte, len(dirty))
	for i, t := range dirty {
		if payloads[i], err = json.Marshal(t); err != nil {
			return err
		}
	}
	if err := st.Commit(gen, data, payloads); err != nil {
		return err
	}
	s.mu.Lock()
	for _, t := range dirty {
		// Clear only the exact tally that was persisted; an import that
		// replaced it mid-commit stays dirty for the next cycle (a
		// re-appended tally is harmless — the recovery overlay dedups).
		if s.talliesDirty[t.ID] == t {
			delete(s.talliesDirty, t.ID)
		}
	}
	s.mu.Unlock()

	// Aging appends superseding records, so the retained log accumulates
	// dead versions. Once it holds more than ~2 records per live tally,
	// rewrite it to one record each — the visible bound on retained-log
	// growth that aging exists to provide.
	if st.RetainedRecords() > 2*nTallies+16 {
		s.mu.Lock()
		all := make([]*RetainedTask, 0, len(s.tallies))
		for _, t := range s.tallies {
			all = append(all, t)
		}
		s.mu.Unlock()
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		rewritten := make([][]byte, len(all))
		for i, t := range all {
			if rewritten[i], err = json.Marshal(t); err != nil {
				return err
			}
		}
		if err := st.RewriteRetained(rewritten); err != nil {
			return err
		}
	}
	return nil
}
