package server

import (
	"reflect"
	"testing"
	"time"
)

// Tests for the hybrid learning plane's server-side primitives: the label
// event stream, model auto-finalization with provenance, uncertainty
// re-prioritization, and the durability of all three.

func hybridTestShard(now *time.Time) *Shard {
	return NewShard(Config{Now: func() time.Time { return *now }}, 0, 1)
}

func featSpec(prio int) TaskSpec {
	return TaskSpec{
		Records:  []string{"a", "b"},
		Classes:  2,
		Quorum:   1,
		Priority: prio,
		Features: [][]float64{{0.5, -1.25}, {2.0, 0.125}},
	}
}

func TestAutoFinalize(t *testing.T) {
	now := time.Unix(100, 0)
	s := hybridTestShard(&now)
	tid := s.Enqueue(featSpec(0))

	if s.AutoFinalize(tid, []int{0}) {
		t.Fatal("accepted labels shorter than records")
	}
	if s.AutoFinalize(tid, []int{0, 2}) {
		t.Fatal("accepted out-of-range label")
	}
	if s.AutoFinalize(tid+99, []int{0, 1}) {
		t.Fatal("accepted unknown task")
	}
	if !s.AutoFinalize(tid, []int{1, 0}) {
		t.Fatal("rejected a valid auto-finalize")
	}
	if s.AutoFinalize(tid, []int{1, 0}) {
		t.Fatal("accepted a second finalize of a done task")
	}

	st, ok := s.ResultStatus(tid)
	if !ok || st.State != "complete" {
		t.Fatalf("status = %+v, want complete", st)
	}
	if st.Source != "model" {
		t.Fatalf("Source = %q, want model", st.Source)
	}
	if !reflect.DeepEqual(st.Consensus, []int{1, 0}) {
		t.Fatalf("Consensus = %v, want the model answer", st.Consensus)
	}
	if c := s.CountersNow(); c.AutoFinalized != 1 {
		t.Fatalf("AutoFinalized = %d, want 1", c.AutoFinalized)
	}

	// A model-finalized task must not hand out work.
	w := s.Join("w")
	if _, ok := s.PickLocal(w, false); ok {
		t.Fatal("model-finalized task was handed out")
	}
}

func TestAutoFinalizeProvenanceSurvivesSnapshot(t *testing.T) {
	now := time.Unix(100, 0)
	s := hybridTestShard(&now)
	tid := s.Enqueue(featSpec(0))
	if !s.AutoFinalize(tid, []int{0, 1}) {
		t.Fatal("auto-finalize failed")
	}

	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := hybridTestShard(&now)
	if err := s2.Restore(data); err != nil {
		t.Fatal(err)
	}
	st, ok := s2.ResultStatus(tid)
	if !ok || st.Source != "model" || !reflect.DeepEqual(st.Consensus, []int{0, 1}) {
		t.Fatalf("restored status = %+v, want model provenance and answer", st)
	}
	if c := s2.CountersNow(); c.AutoFinalized != 1 {
		t.Fatalf("restored AutoFinalized = %d, want 1", c.AutoFinalized)
	}
	// Features survive too: the restored shard can re-seed a plane.
	evs := s2.SeedLabelEvents()
	if len(evs) != 2 || evs[0].Kind != LabelEnqueued || evs[1].Kind != LabelFinalized {
		t.Fatalf("seed events = %+v, want enqueued+finalized", evs)
	}
	if !evs[1].ByModel || !reflect.DeepEqual(evs[1].Labels, []int{0, 1}) {
		t.Fatalf("finalized seed event = %+v, want model labels", evs[1])
	}
	if !reflect.DeepEqual(evs[0].Features, featSpec(0).Features) {
		t.Fatalf("seed features = %v, want original", evs[0].Features)
	}

	// Snapshot validation rejects inconsistent model provenance.
	bad, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	bad.Tasks[0].Done = false
	if enc, err := EncodeSnapshot(bad); err == nil {
		if _, err := DecodeSnapshot(enc); err == nil {
			t.Fatal("decoded a model task that is not done")
		}
	}
}

func TestReprioritizeRebuckets(t *testing.T) {
	now := time.Unix(100, 0)
	s := hybridTestShard(&now)
	low := s.Enqueue(featSpec(0))
	high := s.Enqueue(featSpec(1))

	w := s.Join("w")
	// Priority 1 beats 0: the second task would be handed out first.
	// Re-bucket the first above it and it must win instead.
	if !s.Reprioritize(low, 5) {
		t.Fatal("re-prioritization rejected")
	}
	if s.Reprioritize(low, 5) {
		t.Fatal("accepted a no-op re-prioritization to the same priority")
	}
	if s.Reprioritize(low+99, 1) {
		t.Fatal("accepted unknown task")
	}
	a, ok := s.PickLocal(w, false)
	if !ok || a.TaskID != low {
		t.Fatalf("picked task %d, want re-prioritized %d", a.TaskID, low)
	}
	_ = high

	// Done tasks cannot move.
	if !s.AutoFinalize(high, []int{0, 0}) {
		t.Fatal("auto-finalize failed")
	}
	if s.Reprioritize(high, 3) {
		t.Fatal("re-prioritized a done task")
	}
}

func TestLabelEventStream(t *testing.T) {
	now := time.Unix(100, 0)
	s := hybridTestShard(&now)
	var evs []LabelEvent
	s.SetLabelSink(func(ev LabelEvent) { evs = append(evs, ev) })

	// Tasks without features emit nothing.
	s.Enqueue(TaskSpec{Records: []string{"x"}, Classes: 2, Quorum: 1})
	if len(evs) != 0 {
		t.Fatalf("featureless enqueue emitted %+v", evs)
	}

	tid := s.Enqueue(featSpec(2))
	if len(evs) != 1 || evs[0].Kind != LabelEnqueued || evs[0].Task != tid {
		t.Fatalf("events = %+v, want one enqueued", evs)
	}
	if evs[0].Priority != 2 || evs[0].Classes != 2 || evs[0].Records != 2 {
		t.Fatalf("enqueued event shape = %+v", evs[0])
	}

	w := s.Join("w")
	if _, ok := s.PickLocal(w, false); !ok {
		t.Fatal("no work")
	}
	if outcome, rec, err := s.AcceptAnswer(tid, w, []int{1, 1}); outcome != SubmitAccepted {
		t.Fatalf("submit: %v %d %v", outcome, rec, err)
	}
	// Quorum 1: the answer both acknowledges and finalizes.
	if len(evs) != 3 {
		t.Fatalf("events after submit = %+v, want answered+finalized", evs)
	}
	if evs[1].Kind != LabelAnswered || !reflect.DeepEqual(evs[1].Labels, []int{1, 1}) {
		t.Fatalf("answered event = %+v", evs[1])
	}
	fin := evs[2]
	if fin.Kind != LabelFinalized || fin.ByModel || !reflect.DeepEqual(fin.Labels, []int{1, 1}) {
		t.Fatalf("finalized event = %+v, want human consensus", fin)
	}
	if fin.Answers != 1 || fin.Records != 2 {
		t.Fatalf("finalized event shape = %+v", fin)
	}
	// Finalized events are self-contained: the learning plane resolves the
	// learner from the event's own shape.
	if !reflect.DeepEqual(fin.Features, featSpec(2).Features) || fin.Classes != 2 {
		t.Fatalf("finalized features = %v classes = %d", fin.Features, fin.Classes)
	}

	// Model finalization emits a ByModel finalized event.
	tid2 := s.Enqueue(featSpec(0))
	if !s.AutoFinalize(tid2, []int{0, 1}) {
		t.Fatal("auto-finalize failed")
	}
	last := evs[len(evs)-1]
	if last.Kind != LabelFinalized || !last.ByModel || last.Task != tid2 {
		t.Fatalf("model finalize event = %+v", last)
	}
}

func TestModelAnswersStayOutOfVoteGraph(t *testing.T) {
	now := time.Unix(100, 0)
	s := hybridTestShard(&now)
	tid := s.Enqueue(featSpec(0))
	if !s.AutoFinalize(tid, []int{1, 1}) {
		t.Fatal("auto-finalize failed")
	}
	s.mu.Lock()
	votes, _, _ := s.voteGraph()
	s.mu.Unlock()
	if len(votes) != 0 {
		t.Fatalf("model answer leaked into the vote graph: %+v", votes)
	}
}
