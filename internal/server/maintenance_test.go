package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// fetchWorkers reads GET /api/workers.
func fetchWorkers(t *testing.T, c *Client) []WorkerStats {
	t.Helper()
	r, err := c.HTTP.Get(c.BaseURL + "/api/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out []WorkerStats
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWorkerStatsEndpoint(t *testing.T) {
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	c, _ := newTestServer(t, Config{Now: clock})
	w1, _ := c.Join("alice")
	c.Join("bob")
	c.SubmitTasks([]TaskSpec{{Records: []string{"a", "b"}, Classes: 2}})
	a, _, _ := c.FetchTask(w1)
	now = now.Add(6 * time.Second)
	c.Submit(w1, a.TaskID, []int{0, 1})

	ws := fetchWorkers(t, c)
	if len(ws) != 2 {
		t.Fatalf("workers = %d", len(ws))
	}
	if ws[0].Name != "alice" || ws[0].Completed != 1 {
		t.Fatalf("alice stats = %+v", ws[0])
	}
	// 6 seconds over 2 records = 3 s/record.
	if ws[0].MeanPerRec < 2.9 || ws[0].MeanPerRec > 3.1 {
		t.Fatalf("mean per record = %v", ws[0].MeanPerRec)
	}
	if ws[1].Completed != 0 || ws[1].MeanPerRec != 0 {
		t.Fatalf("bob stats = %+v", ws[1])
	}
}

func TestServerMaintenanceRetiresSlowWorker(t *testing.T) {
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	c, _ := newTestServer(t, Config{
		Now:                  clock,
		MaintenanceThreshold: 4 * time.Second,
		MaintenanceMinObs:    3,
	})
	slow, _ := c.Join("slow")
	specs := make([]TaskSpec, 6)
	for i := range specs {
		specs[i] = TaskSpec{Records: []string{"r"}, Classes: 2}
	}
	c.SubmitTasks(specs)

	// Three completions at 10 s/record: after the third, retirement.
	for i := 0; i < 3; i++ {
		a, ok, err := c.FetchTask(slow)
		if err != nil || !ok {
			t.Fatalf("fetch %d failed: %v", i, err)
		}
		now = now.Add(10 * time.Second)
		if _, _, err := c.Submit(slow, a.TaskID, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	// The retired worker's next fetch is 410 Gone.
	r, err := c.HTTP.Get(fmt.Sprintf("%s/api/task?worker_id=%d", c.BaseURL, slow))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Fatalf("retired fetch status = %d, want 410", r.StatusCode)
	}
	st, _ := c.Status()
	if st["retired"] != 1 {
		t.Fatalf("retired counter = %d", st["retired"])
	}
	if st["workers"] != 0 {
		t.Fatalf("retired worker still in pool: %d", st["workers"])
	}
}

func TestServerMaintenanceKeepsFastWorker(t *testing.T) {
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	c, _ := newTestServer(t, Config{
		Now:                  clock,
		MaintenanceThreshold: 4 * time.Second,
	})
	fast, _ := c.Join("fast")
	specs := make([]TaskSpec, 5)
	for i := range specs {
		specs[i] = TaskSpec{Records: []string{"r"}, Classes: 2}
	}
	c.SubmitTasks(specs)
	for i := 0; i < 5; i++ {
		a, ok, _ := c.FetchTask(fast)
		if !ok {
			t.Fatal("no task")
		}
		now = now.Add(2 * time.Second)
		c.Submit(fast, a.TaskID, []int{0})
	}
	st, _ := c.Status()
	if st["retired"] != 0 {
		t.Fatal("fast worker retired")
	}
}

func TestServerMaintenanceDisabledByDefault(t *testing.T) {
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	c, _ := newTestServer(t, Config{Now: clock})
	w, _ := c.Join("anyone")
	specs := make([]TaskSpec, 4)
	for i := range specs {
		specs[i] = TaskSpec{Records: []string{"r"}, Classes: 2}
	}
	c.SubmitTasks(specs)
	for i := 0; i < 4; i++ {
		a, ok, _ := c.FetchTask(w)
		if !ok {
			t.Fatal("no task")
		}
		now = now.Add(time.Hour) // absurdly slow
		c.Submit(w, a.TaskID, []int{0})
	}
	st, _ := c.Status()
	if st["retired"] != 0 {
		t.Fatal("maintenance fired while disabled")
	}
}
