package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestWorkerUIServed(t *testing.T) {
	_, c := startServer(t, Config{})
	r, err := c.HTTP.Get(c.BaseURL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET / status %d, want 200", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q, want text/html", ct)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The page must wire the full worker protocol.
	for _, want := range []string{"/api/join", "/api/task", "/api/submit", "/api/heartbeat"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("worker page missing %s call", want)
		}
	}
}

func TestWorkerUINotServedOnOtherPaths(t *testing.T) {
	_, c := startServer(t, Config{})
	r, err := c.HTTP.Get(c.BaseURL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope status %d, want 404 (UI only at /)", r.StatusCode)
	}
}
