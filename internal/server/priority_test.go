package server

import "testing"

func TestHighPriorityTasksServedFirst(t *testing.T) {
	_, c := startServer(t, Config{})
	wid, _ := c.Join("w")

	ids, err := c.SubmitTasks([]TaskSpec{
		{Records: []string{"passive-1"}, Classes: 2, Priority: 0},
		{Records: []string{"active-1"}, Classes: 2, Priority: 10},
		{Records: []string{"passive-2"}, Classes: 2, Priority: 0},
		{Records: []string{"active-2"}, Classes: 2, Priority: 10},
	})
	if err != nil {
		t.Fatal(err)
	}

	var got []int
	for range ids {
		a, ok, err := c.FetchTask(wid)
		if err != nil || !ok {
			t.Fatalf("fetch: ok=%v err=%v", ok, err)
		}
		got = append(got, a.TaskID)
		if _, _, err := c.Submit(wid, a.TaskID, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	// Both priority-10 tasks (ids[1], ids[3]) first, FIFO within priority.
	want := []int{ids[1], ids[3], ids[0], ids[2]}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serve order %v, want %v", got, want)
		}
	}
}

func TestPriorityAppliesToSpeculationToo(t *testing.T) {
	_, c := startServer(t, Config{SpeculationLimit: 1})
	w1, _ := c.Join("w1")
	w2, _ := c.Join("w2")
	w3, _ := c.Join("w3")

	ids, err := c.SubmitTasks([]TaskSpec{
		{Records: []string{"low"}, Classes: 2, Priority: 0},
		{Records: []string{"high"}, Classes: 2, Priority: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// w1 takes the high task, w2 the low one; both tasks are now active, so
	// w3 gets a speculative duplicate — of the high-priority task.
	a1, _, _ := c.FetchTask(w1)
	if a1.TaskID != ids[1] {
		t.Fatalf("w1 got task %d, want high-priority %d", a1.TaskID, ids[1])
	}
	a2, _, _ := c.FetchTask(w2)
	if a2.TaskID != ids[0] {
		t.Fatalf("w2 got task %d, want low-priority %d", a2.TaskID, ids[0])
	}
	a3, ok, err := c.FetchTask(w3)
	if err != nil || !ok {
		t.Fatalf("w3 should get a speculative duplicate: ok=%v err=%v", ok, err)
	}
	if a3.TaskID != ids[1] {
		t.Fatalf("speculation went to task %d, want high-priority %d", a3.TaskID, ids[1])
	}
}

func TestPrioritySurvivesSnapshotRestore(t *testing.T) {
	_, c := startServer(t, Config{})
	ids, _ := c.SubmitTasks([]TaskSpec{
		{Records: []string{"low"}, Classes: 2, Priority: 0},
		{Records: []string{"high"}, Classes: 2, Priority: 9},
	})
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, c2 := startServer(t, Config{})
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	wid, _ := c2.Join("w")
	a, ok, _ := c2.FetchTask(wid)
	if !ok || a.TaskID != ids[1] {
		t.Fatalf("restored server served task %d first, want high-priority %d", a.TaskID, ids[1])
	}
}
