package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a Go client for the routing server, used by worker drivers and
// task submitters (and by the integration tests).
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("encoding %s request: %w", path, err)
	}
	r, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", path, r.Status, e.Error)
	}
	if resp != nil {
		return json.NewDecoder(r.Body).Decode(resp)
	}
	return nil
}

// Join admits a worker and returns its id.
func (c *Client) Join(name string) (int, error) {
	var resp struct {
		WorkerID int `json:"worker_id"`
	}
	err := c.post("/api/join", map[string]string{"name": name}, &resp)
	return resp.WorkerID, err
}

// Heartbeat keeps the worker alive while waiting.
func (c *Client) Heartbeat(workerID int) error {
	return c.post("/api/heartbeat", map[string]int{"worker_id": workerID}, nil)
}

// Leave removes the worker from the pool.
func (c *Client) Leave(workerID int) error {
	return c.post("/api/leave", map[string]int{"worker_id": workerID}, nil)
}

// SubmitTasks enqueues tasks and returns their ids.
func (c *Client) SubmitTasks(tasks []TaskSpec) ([]int, error) {
	var resp struct {
		TaskIDs []int `json:"task_ids"`
	}
	err := c.post("/api/tasks", map[string][]TaskSpec{"tasks": tasks}, &resp)
	return resp.TaskIDs, err
}

// Assignment is a unit of work handed to a worker.
type Assignment struct {
	TaskID  int      `json:"task_id"`
	Records []string `json:"records"`
	Classes int      `json:"classes"`
}

// FetchTask polls for work. ok is false when no work is available yet.
func (c *Client) FetchTask(workerID int) (a Assignment, ok bool, err error) {
	r, err := c.HTTP.Get(fmt.Sprintf("%s/api/task?worker_id=%d", c.BaseURL, workerID))
	if err != nil {
		return a, false, err
	}
	defer r.Body.Close()
	switch r.StatusCode {
	case http.StatusNoContent:
		return a, false, nil
	case http.StatusOK:
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			return a, false, fmt.Errorf("decoding assignment: %w", err)
		}
		return a, true, nil
	default:
		return a, false, fmt.Errorf("fetch task: %s", r.Status)
	}
}

// Submit sends a completed assignment. terminated reports that the task had
// already been completed by a faster worker (the work is still paid).
func (c *Client) Submit(workerID, taskID int, labels []int) (accepted, terminated bool, err error) {
	var resp struct {
		Accepted   bool `json:"accepted"`
		Terminated bool `json:"terminated"`
	}
	err = c.post("/api/submit", map[string]any{
		"worker_id": workerID, "task_id": taskID, "labels": labels,
	}, &resp)
	return resp.Accepted, resp.Terminated, err
}

// Result fetches a task's status and consensus labels.
func (c *Client) Result(taskID int) (TaskStatus, error) {
	var st TaskStatus
	r, err := c.HTTP.Get(fmt.Sprintf("%s/api/result?task_id=%d", c.BaseURL, taskID))
	if err != nil {
		return st, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return st, fmt.Errorf("result: %s", r.Status)
	}
	err = json.NewDecoder(r.Body).Decode(&st)
	return st, err
}

// Workers fetches per-worker statistics.
func (c *Client) Workers() ([]WorkerStats, error) {
	var out []WorkerStats
	r, err := c.HTTP.Get(c.BaseURL + "/api/workers")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workers: %s", r.Status)
	}
	err = json.NewDecoder(r.Body).Decode(&out)
	return out, err
}

// Costs fetches the accumulated spend in dollars, by component.
func (c *Client) Costs() (map[string]float64, error) {
	var out map[string]float64
	r, err := c.HTTP.Get(c.BaseURL + "/api/costs")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("costs: %s", r.Status)
	}
	err = json.NewDecoder(r.Body).Decode(&out)
	return out, err
}

// Snapshot downloads the server's durable state as JSON.
func (c *Client) Snapshot() ([]byte, error) {
	r, err := c.HTTP.Get(c.BaseURL + "/api/snapshot")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("snapshot: %s", r.Status)
	}
	return io.ReadAll(r.Body)
}

// Restore uploads a snapshot, replacing the server's durable state.
func (c *Client) Restore(data []byte) error {
	r, err := c.HTTP.Post(c.BaseURL+"/api/restore", "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&e)
		return fmt.Errorf("restore: %s (%s)", r.Status, e.Error)
	}
	return nil
}

// Promote asks a journal-shipping follower to take over as primary. It
// returns the number of shards recovered from the mirror.
func (c *Client) Promote() (int, error) {
	var resp struct {
		OK     bool `json:"ok"`
		Shards int  `json:"shards"`
	}
	if err := c.post("/api/promote", struct{}{}, &resp); err != nil {
		return 0, err
	}
	return resp.Shards, nil
}

// Metricsz fetches the Prometheus-format metrics page from the historical
// /api/metricsz alias.
func (c *Client) Metricsz() (string, error) {
	return c.scrape("/api/metricsz")
}

// Metrics fetches the Prometheus-format metrics page from the canonical
// /metrics endpoint (the same page Metricsz serves).
func (c *Client) Metrics() (string, error) {
	return c.scrape("/metrics")
}

func (c *Client) scrape(path string) (string, error) {
	r, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return "", err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", path, r.Status)
	}
	b, err := io.ReadAll(r.Body)
	return string(b), err
}

// Status fetches pool and queue health counters.
func (c *Client) Status() (map[string]int, error) {
	var st map[string]int
	r, err := c.HTTP.Get(c.BaseURL + "/api/status")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status: %s", r.Status)
	}
	err = json.NewDecoder(r.Body).Decode(&st)
	return st, err
}
