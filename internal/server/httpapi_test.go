package server

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// The strict single-field decoder replaced the map[string]int unmarshal:
// same tolerance for unknown fields, but no per-request map allocation and
// duplicate occurrences of the wanted field are rejected instead of
// silently last-wins.
func TestDecodeIntFieldStrict(t *testing.T) {
	for _, tc := range []struct {
		name string
		body string
		want int
		ok   bool
	}{
		{"plain", `{"worker_id":7}`, 7, true},
		{"whitespace", ` { "worker_id" : 42 } `, 42, true},
		{"negative", `{"worker_id":-3}`, -3, true},
		{"unknown fields skipped", `{"x":"s","nested":{"worker_id":1},"arr":[1,{"a":2}],"worker_id":9,"b":true}`, 9, true},
		{"trailing content ignored", `{"worker_id":5} garbage`, 5, true},
		{"missing", `{"nope":1}`, 0, false},
		{"empty object", `{}`, 0, false},
		{"duplicate rejected", `{"worker_id":1,"worker_id":2}`, 0, false},
		{"float rejected", `{"worker_id":1.5}`, 0, false},
		{"exponent rejected", `{"worker_id":1e3}`, 0, false},
		{"string rejected", `{"worker_id":"7"}`, 0, false},
		{"truncated", `{"worker_id":`, 0, false},
		{"not an object", `[1,2]`, 0, false},
		{"empty body", ``, 0, false},
	} {
		got, err := decodeIntField([]byte(tc.body), "worker_id")
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("%s: decodeIntField(%q) = %d, %v; want %d, ok=%v", tc.name, tc.body, got, err, tc.want, tc.ok)
		}
	}
	if _, err := decodeIntField([]byte(`{"nope":1}`), "worker_id"); err == nil ||
		!strings.Contains(err.Error(), `missing field "worker_id"`) {
		t.Errorf("missing-field error = %v", err)
	}
}

// encoding/json treated null as "leave the zero value" at every position;
// JS-style clients that serialize absent fields as null depend on it, so
// the hand-rolled decoders must keep that tolerance.
func TestDecodersAcceptNull(t *testing.T) {
	if v, err := decodeIntField([]byte(`{"worker_id":null}`), "worker_id"); err != nil || v != 0 {
		t.Errorf("null int field = %d, %v", v, err)
	}
	if _, err := decodeIntField([]byte(`null`), "worker_id"); err == nil ||
		!strings.Contains(err.Error(), `missing field`) {
		t.Errorf("null body should read as empty object, got %v", err)
	}
	if v, err := decodeStringField([]byte(`{"name":null}`), "name"); err != nil || v != "" {
		t.Errorf("null string field = %q, %v", v, err)
	}
	if v, err := decodeStringField([]byte(`null`), "name"); err != nil || v != "" {
		t.Errorf("null join body = %q, %v", v, err)
	}
	w, task, labels, err := decodeSubmitBody([]byte(`{"worker_id":null,"task_id":null,"labels":null}`))
	if err != nil || w != 0 || task != 0 || labels != nil {
		t.Errorf("null submit fields = %d %d %v %v", w, task, labels, err)
	}
	if _, _, labels, err := decodeSubmitBody([]byte(`{"labels":[1,null,2]}`)); err != nil ||
		!reflect.DeepEqual(labels, []int{1, 0, 2}) {
		t.Errorf("null label element = %v, %v", labels, err)
	}
	if specs, err := decodeTaskSpecs([]byte(`{"tasks":null}`)); err != nil || specs != nil {
		t.Errorf("null tasks = %+v, %v", specs, err)
	}
	specs, err := decodeTaskSpecs([]byte(`{"tasks":[{"records":["a",null],"classes":null,"quorum":null,"priority":null}]}`))
	if err != nil || !reflect.DeepEqual(specs, []TaskSpec{{Records: []string{"a", ""}}}) {
		t.Errorf("null spec fields = %+v, %v", specs, err)
	}
	// "nullx" is not the null literal.
	if _, err := decodeIntField([]byte(`{"worker_id":nullx}`), "worker_id"); err == nil {
		t.Error("nullx accepted as null")
	}
}

func TestDecodeSubmitBodyStrict(t *testing.T) {
	w, task, labels, err := decodeSubmitBody([]byte(`{"worker_id":3,"task_id":9,"labels":[0,2,1]}`))
	if err != nil || w != 3 || task != 9 || !reflect.DeepEqual(labels, []int{0, 2, 1}) {
		t.Fatalf("decodeSubmitBody = %d %d %v %v", w, task, labels, err)
	}
	// Absent fields default to zero values, matching the historical struct
	// decode (the core then answers unknown-worker / bad-labels).
	if w, task, labels, err := decodeSubmitBody([]byte(`{}`)); err != nil || w != 0 || task != 0 || labels != nil {
		t.Fatalf("empty submit = %d %d %v %v", w, task, labels, err)
	}
	for _, bad := range []string{
		`{"worker_id":1,"worker_id":2,"task_id":3,"labels":[0]}`,
		`{"labels":[0],"labels":[1]}`,
		`{"labels":[0.5]}`,
		`{"labels":1}`,
		`{"worker_id":}`,
		`nope`,
	} {
		if _, _, _, err := decodeSubmitBody([]byte(bad)); err == nil {
			t.Errorf("decodeSubmitBody(%q) accepted", bad)
		}
	}
}

func TestDecodeTaskSpecs(t *testing.T) {
	specs, err := decodeTaskSpecs([]byte(
		`{"tasks":[{"records":["a","b\nA"],"classes":3,"quorum":2,"priority":-1},{"records":[]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := []TaskSpec{
		{Records: []string{"a", "b\nA"}, Classes: 3, Quorum: 2, Priority: -1},
		{Records: []string{}},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("decodeTaskSpecs = %+v, want %+v", specs, want)
	}
	if specs, err := decodeTaskSpecs([]byte(`{"tasks":[]}`)); err != nil || len(specs) != 0 {
		t.Fatalf("empty tasks = %+v, %v", specs, err)
	}
	for _, bad := range []string{`{"tasks":1}`, `{"tasks":[{"records":1}]}`, `{`, `{"tasks":[{]}`} {
		if _, err := decodeTaskSpecs([]byte(bad)); err == nil {
			t.Errorf("decodeTaskSpecs(%q) accepted", bad)
		}
	}
}

// The hand-rolled response encoder must emit exactly what encoding/json's
// HTML-escaping encoder would for any string, since error bodies and
// assignment records pass arbitrary user text through it.
func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"", "plain", `quo"te`, `back\slash`, "new\nline", "tab\tcr\r",
		"ctl\x01\x1f", "<script>&amp;</script>", "unicode ☺ 你好",
		"line sep ", "invalid\xffutf8", "high \U0001F600 plane",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if string(got) != string(want) {
			t.Errorf("appendJSONString(%q) = %s, want %s", s, got, want)
		}
	}
}
