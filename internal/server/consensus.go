package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"github.com/clamshell/clamshell/internal/quality"
	"github.com/clamshell/clamshell/internal/stats"
)

// Cross-task consensus: GET /api/consensus?estimator=majority|em|kos
// aggregates every answer on the server into one vote graph and returns
// per-task consensus labels under the chosen estimator. Unlike
// /api/result, which aggregates each task's own quorum in isolation, the
// graph estimators (EM, KOS) pool evidence across tasks: a worker who
// disagrees with consensus everywhere is down-weighted everywhere, which
// is what makes them robust to spammers and adversaries.

// ConsensusResponse is the payload of GET /api/consensus.
type ConsensusResponse struct {
	Estimator string `json:"estimator"`
	// Labels maps task id -> per-record consensus labels (-1 for records
	// with no votes yet).
	Labels map[int][]int `json:"labels"`
	// WorkerScores is the estimator's per-worker signal: estimated accuracy
	// for "em", reliability (negative = adversarial) for "kos". Empty for
	// "majority".
	WorkerScores map[int]float64 `json:"worker_scores,omitempty"`
	// ModelTasks lists (ascending) the tasks auto-finalized by the hybrid
	// plane's model. Their served consensus (/api/result) is the model's
	// answer, but model answers never enter the vote graph here — Labels
	// still reflects human votes only, so the graph estimators keep judging
	// workers against humans, not against the model's own output.
	ModelTasks []int `json:"model_tasks,omitempty"`
}

// handleConsensus aggregates all answers under the requested estimator.
func (s *Server) handleConsensus(w http.ResponseWriter, r *http.Request) {
	estimator := r.URL.Query().Get("estimator")
	if estimator == "" {
		estimator = "majority"
	}

	s.mu.Lock()
	votes, stride, classes := s.voteGraph()
	order := append([]int(nil), s.order...)
	records := make(map[int]int, len(s.tasks)+len(s.tallies))
	for id, u := range s.tasks {
		records[id] = len(u.spec.Records)
	}
	for id, t := range s.tallies {
		records[id] = t.Records
	}
	var modelTasks []int
	for id, u := range s.tasks {
		if u.model {
			modelTasks = append(modelTasks, id)
		}
	}
	for id, t := range s.tallies {
		if t.Model {
			modelTasks = append(modelTasks, id)
		}
	}
	sort.Ints(modelTasks)
	seed := int64(s.nextTask)*1e6 + int64(len(votes))
	s.mu.Unlock()

	var labels map[int]int
	scores := map[int]float64{}
	switch estimator {
	case "majority":
		labels = quality.MajorityLabels(votes)
	case "em":
		res := quality.EstimateAccuracy(votes, classes, 20)
		labels = res.Labels
		for id, a := range res.Accuracies {
			scores[int(id)] = a
		}
	case "kos":
		if classes > 2 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("kos estimator requires binary tasks; server has %d classes", classes))
			return
		}
		res := quality.KOS(votes, 10, stats.NewRand(seed))
		labels = res.Labels
		for id, rel := range res.Reliability {
			scores[int(id)] = rel
		}
	default:
		writeErr(w, http.StatusBadRequest,
			errors.New("unknown estimator (want majority, em or kos)"))
		return
	}

	resp := ConsensusResponse{Estimator: estimator, Labels: make(map[int][]int, len(order))}
	for _, tid := range order {
		n := records[tid]
		out := make([]int, n)
		any := false
		for rec := 0; rec < n; rec++ {
			if l, ok := labels[tid*stride+rec]; ok {
				out[rec] = l
				any = true
			} else {
				out[rec] = -1
			}
		}
		if any {
			resp.Labels[tid] = out
		}
	}
	if estimator != "majority" {
		resp.WorkerScores = scores
	}
	resp.ModelTasks = modelTasks
	writeJSON(w, http.StatusOK, resp)
}

// voteGraph flattens every answer on the server — live tasks and retained
// tallies alike — into per-record votes. Record rec of task tid becomes
// item tid*stride + rec. Callers hold mu.
func (s *Shard) voteGraph() (votes []quality.Vote, stride, classes int) {
	stride = 1
	classes = 2
	for _, u := range s.tasks {
		if len(u.spec.Records) > stride {
			stride = len(u.spec.Records)
		}
		if u.spec.Classes > classes {
			classes = u.spec.Classes
		}
	}
	for _, t := range s.tallies {
		if t.Records > stride {
			stride = t.Records
		}
		if t.Classes > classes {
			classes = t.Classes
		}
	}
	return s.flattenVotes(stride), stride, classes
}

// Consensus fetches cross-task consensus labels from the server under the
// given estimator ("majority", "em" or "kos").
func (c *Client) Consensus(estimator string) (ConsensusResponse, error) {
	var out ConsensusResponse
	r, err := c.HTTP.Get(c.BaseURL + "/api/consensus?estimator=" + estimator)
	if err != nil {
		return out, err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return out, fmt.Errorf("consensus: %s", r.Status)
	}
	// encoding/json round-trips int-keyed maps as quoted integer keys.
	err = json.NewDecoder(r.Body).Decode(&out)
	return out, err
}
