package server

import (
	"net/http"
	"time"

	"github.com/clamshell/clamshell/internal/journal"
	"github.com/clamshell/clamshell/internal/metrics"
)

// accountingT aliases metrics.Accounting (see Server.costs).
type accountingT = metrics.Accounting

// Live-server cost accounting, mirroring the simulator's: retained workers
// accrue wait pay while idle, record pay on completed work, and terminated
// (straggled) submissions are still paid.

// CostConfig sets the live pay rates. Zero values select the paper's
// defaults ($0.05/min wait, $0.02/record).
type CostConfig struct {
	WaitPayPerMin metrics.Cost
	RecordPay     metrics.Cost
}

func (c *CostConfig) fillDefaults() {
	if c.WaitPayPerMin == 0 {
		c.WaitPayPerMin = metrics.Cents(5)
	}
	if c.RecordPay == 0 {
		c.RecordPay = metrics.Cents(2)
	}
}

// settleWait accrues wait pay for a worker's idle span ending now. Callers
// hold mu. Wait starts at join and restarts at each submit; fetching a task
// ends the waiting span.
//
//clamshell:locked callers hold mu
func (s *Shard) settleWait(pw *poolWorker) {
	now := s.cfg.Now()
	if !pw.waitStart.IsZero() && now.After(pw.waitStart) {
		pay := metrics.PerMinute(s.cfg.Costs.WaitPayPerMin, now.Sub(pw.waitStart))
		s.costs.WaitPay += pay
		if pay != 0 {
			s.logOp(journal.Op{T: journal.OpWaitPay, Worker: pw.id, Pay: int64(pay)})
		}
	}
	pw.waitStart = time.Time{}
}

// startWait begins an idle span for the worker. Callers hold mu.
func (s *Shard) startWait(pw *poolWorker) {
	pw.waitStart = s.cfg.Now()
}

// payWork credits record pay for a submission (terminated submissions are
// paid under TerminatedPay) and returns the amount, which the caller
// journals on its answer op so replay reproduces the ledger bit-exactly.
// Callers hold mu.
func (s *Shard) payWork(records int, terminated bool) metrics.Cost {
	amount := s.cfg.Costs.RecordPay * metrics.Cost(records)
	if terminated {
		s.costs.TerminatedPay += amount
	} else {
		s.costs.WorkPay += amount
	}
	return amount
}

// handleCosts reports the accumulated spend, including wait pay accrued up
// to now for currently idle workers — Shard.AccruedCosts, which also
// expires stale workers first so they stop billing. A standalone server
// never produces orphans, so there is nothing to drain afterwards.
func (s *Server) handleCosts(w http.ResponseWriter, r *http.Request) {
	acct := s.AccruedCosts()
	writeJSON(w, http.StatusOK, map[string]float64{
		"wait_pay_dollars":       acct.WaitPay.Dollars(),
		"work_pay_dollars":       acct.WorkPay.Dollars(),
		"terminated_pay_dollars": acct.TerminatedPay.Dollars(),
		"total_dollars":          acct.Total().Dollars(),
	})
}
