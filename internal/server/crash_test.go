package server

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/clamshell/clamshell/internal/journal"
)

// The crash-recovery property: sever the journal at ANY byte — every
// record boundary, mid-record torn writes, bit flips — and recovery must
// reconstruct exactly the durable state the shard had when that prefix was
// acknowledged. Exact state equality is the strongest form of the
// guarantees that matter operationally: no accepted submit is lost, no
// vote or payment is double-counted, the retired set and counters match.
//
// The harness extends the dispatch property-test pattern: drive a shard
// through randomized protocol sequences (enqueue/assign/steal/submit/
// replay/leave/expire/compact) with write-through journaling attached,
// checkpointing EncodeSnapshot(ExportState()) after every action. Then,
// for each checkpoint, clone the store directory, truncate the wal at the
// checkpoint's record boundary, recover a fresh shard and require its
// exported state to be byte-identical to the checkpoint. Torn writes and
// bit flips must land exactly on the preceding boundary's state.

// severCheckpoint pairs a wal position with the expected durable state.
type severCheckpoint struct {
	gen   uint64 // wal generation the checkpoint lives in
	ops   uint64 // records in that wal when the state was captured
	state []byte // EncodeSnapshot(ExportState()) at that moment
}

// cloneStoreDir copies a store directory, truncating the current wal to
// cut bytes (cut < 0 keeps it whole) and optionally flipping one byte.
func cloneStoreDir(t *testing.T, src string, gen uint64, cut int64, flip int64) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	walName := journal.WALName(gen)
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == walName {
			if cut >= 0 && cut < int64(len(data)) {
				data = data[:cut]
			}
			if flip >= 0 && flip < int64(len(data)) {
				data = append([]byte(nil), data...)
				data[flip] ^= 0x5a
			}
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recoverState opens a (possibly severed) store clone, recovers a fresh
// shard from it and returns the exported durable state.
func recoverState(t *testing.T, dir string, cfg Config) []byte {
	t.Helper()
	st, rec, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer st.Close()
	s := NewShard(cfg, 0, 1)
	if err := s.RecoverFrom(st, rec); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	data, err := EncodeSnapshot(s.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// walBoundaries returns the byte offset after record k for k=0..n.
func walBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := journal.NewScanner(f, journal.MagicWAL)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{sc.Offset()}
	for {
		if _, err := sc.Scan(); err == io.EOF {
			return bounds
		} else if err != nil {
			t.Fatalf("final wal has a corrupt record after %d: %v", len(bounds)-1, err)
		}
		bounds = append(bounds, sc.Offset())
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	const trials = 6
	totalChecks := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
		cfg := Config{
			SpeculationLimit: 1 + rng.Intn(2),
			WorkerTimeout:    30 * time.Second,
			Now:              func() time.Time { return now },
		}
		if trial%2 == 1 {
			// Exercise retirement ops on odd trials.
			cfg.MaintenanceThreshold = 500 * time.Millisecond
			cfg.MaintenanceMinObs = 1
		}
		dir := t.TempDir()
		st, rec, err := journal.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := NewShard(cfg, 0, 1)
		if err := s.RecoverFrom(st, rec); err != nil {
			t.Fatal(err)
		}

		var cps []severCheckpoint
		checkpoint := func() {
			data, err := EncodeSnapshot(s.ExportState())
			if err != nil {
				t.Fatal(err)
			}
			cps = append(cps, severCheckpoint{gen: st.Gen(), ops: st.WALOps(), state: data})
		}
		checkpoint() // the empty prefix

		var workers []int
		join := func() { workers = append(workers, s.Join("w")) }
		randWorker := func() int {
			if len(workers) == 0 {
				return 0
			}
			return workers[rng.Intn(len(workers))]
		}
		dropWorker := func(id int) {
			for i, w := range workers {
				if w == id {
					workers = append(workers[:i], workers[i+1:]...)
					return
				}
			}
		}
		join()
		join()
		checkpoint()

		compactions := 0
		const steps = 220
		for step := 0; step < steps; step++ {
			now = now.Add(time.Duration(rng.Intn(3000)) * time.Millisecond)
			switch rng.Intn(14) {
			case 0, 1, 2:
				spec := TaskSpec{
					Records:  []string{"r", "s"}[:1+rng.Intn(2)],
					Classes:  2 + rng.Intn(2),
					Quorum:   1 + rng.Intn(2),
					Priority: rng.Intn(3),
				}
				if rng.Intn(2) == 0 {
					// Feature vectors ride the submit op and must survive the
					// round trip bit-exactly (arbitrary float64s included).
					spec.Features = make([][]float64, len(spec.Records))
					for i := range spec.Features {
						spec.Features[i] = []float64{rng.NormFloat64(), rng.Float64() * 1e-7}
					}
				}
				s.Enqueue(spec)
			case 3:
				join()
			case 4, 5:
				s.PickLocal(randWorker(), rng.Intn(2) == 0)
			case 6:
				w := randWorker()
				if tid, _, ok := s.PickSteal(w, rng.Intn(2) == 0); ok {
					if !s.AssignStolen(w, tid) {
						s.ReleaseActive(tid, w)
					}
				}
			case 7, 8:
				// Submit the worker's in-flight assignment; sometimes replay
				// it, which must change nothing durable.
				w := randWorker()
				s.mu.Lock()
				pw := s.workers[w]
				var tid, records int
				if pw != nil && pw.current != 0 {
					tid = pw.current
					if u, ok := s.tasks[tid]; ok {
						records = len(u.spec.Records)
					}
				}
				s.mu.Unlock()
				if tid != 0 && records > 0 {
					labels := make([]int, records)
					for i := range labels {
						labels[i] = rng.Intn(2)
					}
					if outcome, rec, _ := s.AcceptAnswer(tid, w, labels); outcome == SubmitAccepted || outcome == SubmitTerminated {
						s.FinishAssignment(w, tid, rec)
					}
					if rng.Intn(3) == 0 {
						s.AcceptAnswer(tid, w, labels)
					}
				}
			case 9:
				w := randWorker()
				s.Leave(w)
				dropWorker(w)
			case 10:
				// Jump the clock so stale workers expire (clipped wait pay).
				now = now.Add(time.Duration(rng.Intn(40)) * time.Second)
				s.CountersNow()
				s.mu.Lock()
				kept := workers[:0]
				for _, w := range workers {
					if _, ok := s.workers[w]; ok {
						kept = append(kept, w)
					}
				}
				workers = kept
				s.mu.Unlock()
			case 12:
				// A hybrid-plane auto-finalize: the decision is journaled and
				// must replay byte-exactly, provenance included.
				s.mu.Lock()
				var pend []int
				for id, u := range s.tasks {
					if !u.done {
						pend = append(pend, id)
					}
				}
				s.mu.Unlock()
				sort.Ints(pend)
				if len(pend) > 0 {
					tid := pend[rng.Intn(len(pend))]
					s.mu.Lock()
					u := s.tasks[tid]
					n, cls := len(u.spec.Records), u.spec.Classes
					s.mu.Unlock()
					labels := make([]int, n)
					for i := range labels {
						labels[i] = rng.Intn(cls)
					}
					s.AutoFinalize(tid, labels)
				}
			case 13:
				// A hybrid-plane re-prioritization of a random pending task.
				s.mu.Lock()
				var pend []int
				for id, u := range s.tasks {
					if !u.done {
						pend = append(pend, id)
					}
				}
				s.mu.Unlock()
				sort.Ints(pend)
				if len(pend) > 0 {
					s.Reprioritize(pend[rng.Intn(len(pend))], rng.Intn(5))
				}
			case 11:
				if step < steps/2 && compactions < 3 {
					// Compaction with a short retention window: completed
					// tasks past it demote to tallies; the journal rotates.
					// Confined to the first half (and capped) so plenty of
					// sever points land in the final generation.
					compactions++
					if err := s.CompactInto(st, 20*time.Second); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Keep the maintenance-retired in sync with the driver's view.
			s.mu.Lock()
			kept := workers[:0]
			for _, w := range workers {
				if _, ok := s.workers[w]; ok {
					kept = append(kept, w)
				}
			}
			workers = kept
			s.mu.Unlock()
			checkpoint()
		}
		finalGen := st.Gen()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		// Recovery must be deterministic under the same frozen clock.
		rcfg := cfg
		rcfg.Now = func() time.Time { return now }

		walPath := filepath.Join(dir, journal.WALName(finalGen))
		bounds := walBoundaries(t, walPath)

		// Phase 1: sever at every record boundary that has a checkpoint in
		// the final generation; recovered state must equal it exactly.
		// (Checkpoints from earlier generations were verified implicitly:
		// compaction folded them into the snapshot this recovery loads.)
		byOps := make(map[uint64][]byte)
		for _, cp := range cps {
			if cp.gen == finalGen {
				byOps[cp.ops] = cp.state
			}
		}
		for ops, want := range byOps {
			if ops >= uint64(len(bounds)) {
				t.Fatalf("trial %d: checkpoint at %d ops beyond wal's %d records", trial, ops, len(bounds)-1)
			}
			clone := cloneStoreDir(t, dir, finalGen, bounds[ops], -1)
			got := recoverState(t, clone, rcfg)
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d: sever at boundary %d: recovered state diverged\n got: %s\nwant: %s",
					trial, ops, got, want)
			}
			totalChecks++
		}

		// Phase 2: torn writes. Cutting mid-record (or flipping a byte in
		// the tail record) must recover exactly the previous boundary's
		// state: the torn record is dropped, nothing before it is harmed.
		for k := 0; k+1 < len(bounds); k++ {
			if rng.Intn(2) != 0 {
				continue
			}
			recLen := bounds[k+1] - bounds[k]
			cut := bounds[k] + 1 + rng.Int63n(recLen-1)
			cloneClean := cloneStoreDir(t, dir, finalGen, bounds[k], -1)
			cloneTorn := cloneStoreDir(t, dir, finalGen, cut, -1)
			want := recoverState(t, cloneClean, rcfg)
			if got := recoverState(t, cloneTorn, rcfg); !bytes.Equal(got, want) {
				t.Fatalf("trial %d: torn write in record %d (cut %d) diverged from boundary state",
					trial, k, cut)
			}
			totalChecks++
			// Bit flip inside the final record of a truncated log.
			flipAt := bounds[k] + rng.Int63n(recLen)
			cloneFlip := cloneStoreDir(t, dir, finalGen, bounds[k+1], flipAt)
			if got := recoverState(t, cloneFlip, rcfg); !bytes.Equal(got, want) {
				t.Fatalf("trial %d: bit flip at %d in record %d not dropped cleanly",
					trial, flipAt, k)
			}
			totalChecks++
		}
	}
	if totalChecks < 1000 {
		t.Fatalf("only %d sever points checked, want >= 1000", totalChecks)
	}
	t.Logf("verified %d randomized sever points across %d trials", totalChecks, trials)
}
