package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/clamshell/clamshell/internal/sketch"
)

// Op identifies one of the seven core operations. The order matches the
// wire protocol's opcode order (wire opcode = Op + 1), so the transport can
// map a frame's opcode to its Op with one subtraction.
type Op int

const (
	OpKindJoin Op = iota
	OpKindHeartbeat
	OpKindLeave
	OpKindEnqueue
	OpKindFetch
	OpKindSubmit
	OpKindResult
	NumOps
)

// String returns the op's metric-label spelling.
func (o Op) String() string {
	switch o {
	case OpKindJoin:
		return "join"
	case OpKindHeartbeat:
		return "heartbeat"
	case OpKindLeave:
		return "leave"
	case OpKindEnqueue:
		return "enqueue"
	case OpKindFetch:
		return "fetch"
	case OpKindSubmit:
		return "submit"
	case OpKindResult:
		return "result"
	}
	return "unknown"
}

// TransportStats tracks per-op service time and op counts for one
// transport surface (HTTP shim or binary wire).
type TransportStats struct {
	lat [NumOps]*sketch.Recorder
	n   [NumOps]atomic.Uint64
}

func (ts *TransportStats) init() {
	for i := range ts.lat {
		ts.lat[i] = sketch.NewRecorder(sketch.DefaultCompression)
	}
}

// Observe records one completed op with its server-side service time.
func (ts *TransportStats) Observe(op Op, seconds float64) {
	if op < 0 || op >= NumOps {
		return
	}
	ts.n[op].Add(1)
	ts.lat[op].Record(seconds)
}

// Tick counts one completed op without a latency observation. Transports
// that sample their clock reads (the wire hot path) call Tick for the
// unsampled ops so counts stay exact while the sketch sees a uniform
// subsample.
func (ts *TransportStats) Tick(op Op) {
	if op < 0 || op >= NumOps {
		return
	}
	ts.n[op].Add(1)
}

// Count returns the number of ops observed for op.
func (ts *TransportStats) Count(op Op) uint64 {
	if op < 0 || op >= NumOps {
		return 0
	}
	return ts.n[op].Load()
}

// Snapshot returns a merged point-in-time digest of op's service times.
func (ts *TransportStats) Snapshot(op Op) *sketch.TDigest {
	if op < 0 || op >= NumOps {
		return sketch.New(sketch.DefaultCompression)
	}
	return ts.lat[op].Snapshot()
}

// Obs is the observability plane shared by whatever transports front a
// Core: per-op service-time sketches for the JSON shim and the binary wire
// protocol, wire frame-decode time, and the fabric's steal counter. The
// clock is injected from the Core's own (possibly fake) clock so timings
// are deterministic under test clocks and consistent with the Core's view
// of time.
type Obs struct {
	HTTP       TransportStats
	Wire       TransportStats
	WireDecode *sketch.Recorder
	Steals     atomic.Uint64

	// Per-connection wire accounting, keyed by remote address. The wire
	// transport resolves one *ConnStats at handshake and bumps its atomics
	// per frame, so the per-frame hot path never touches the map or its
	// lock. Tracking is capped; remotes past the cap aggregate under
	// connOverflow so a churning client population cannot grow the map
	// without bound.
	connMu sync.Mutex
	conns  map[string]*ConnStats

	now func() time.Time
}

// ConnStats counts one wire connection's served ops, strict-decoder
// rejections, and rate-limited refusals. Reconnects from the same remote
// address accumulate into the same entry.
type ConnStats struct {
	Ops          atomic.Uint64
	DecodeErrors atomic.Uint64
	Throttled    atomic.Uint64
}

// connTrackMax bounds the number of distinct remotes tracked individually.
const connTrackMax = 256

// connOverflow aggregates remotes past the tracking cap.
const connOverflow = "other"

// Conn returns the stats cell for a remote address, creating it if the
// tracking cap allows; past the cap the shared overflow cell is returned.
// Called once per connection at handshake, never per frame.
func (o *Obs) Conn(remote string) *ConnStats {
	o.connMu.Lock()
	defer o.connMu.Unlock()
	if o.conns == nil {
		o.conns = make(map[string]*ConnStats)
	}
	if cs, ok := o.conns[remote]; ok {
		return cs
	}
	if len(o.conns) >= connTrackMax {
		remote = connOverflow
		if cs, ok := o.conns[remote]; ok {
			return cs
		}
	}
	cs := &ConnStats{}
	o.conns[remote] = cs
	return cs
}

// ConnCount is one remote's point-in-time wire accounting.
type ConnCount struct {
	Remote       string
	Ops          uint64
	DecodeErrors uint64
	Throttled    uint64
}

// ConnSnapshot returns per-remote wire counts sorted by remote address
// (deterministic scrape output).
func (o *Obs) ConnSnapshot() []ConnCount {
	o.connMu.Lock()
	defer o.connMu.Unlock()
	out := make([]ConnCount, 0, len(o.conns))
	for remote, cs := range o.conns {
		out = append(out, ConnCount{
			Remote:       remote,
			Ops:          cs.Ops.Load(),
			DecodeErrors: cs.DecodeErrors.Load(),
			Throttled:    cs.Throttled.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Remote < out[j].Remote })
	return out
}

// NewObs builds an observability plane on the given clock (nil selects
// time.Now).
func NewObs(now func() time.Time) *Obs {
	if now == nil {
		now = time.Now
	}
	o := &Obs{WireDecode: sketch.NewRecorder(sketch.DefaultCompression), now: now}
	o.HTTP.init()
	o.Wire.init()
	return o
}

// Now returns the plane's clock reading; transports use it to bracket op
// handling.
func (o *Obs) Now() time.Time { return o.now() }

// obsProvider is the interface transports sniff on a Core to find its
// observability plane; Cores without one simply are not instrumented.
type obsProvider interface {
	Obs() *Obs
}

// coreObs returns c's observability plane, or nil.
func coreObs(c Core) *Obs {
	if p, ok := c.(obsProvider); ok {
		return p.Obs()
	}
	return nil
}
