package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/clamshell/clamshell/internal/metrics"
)

// Durability: the server can snapshot its task queue and accounting to JSON
// and restore it after a restart. Workers are deliberately not persisted —
// retainer sessions are live HTTP conversations that cannot survive a
// process restart; workers simply rejoin and the restored queue is routed
// to them. In-flight assignments at snapshot time are likewise dropped back
// to the queue (the same thing that happens when a worker times out), so a
// restore never loses a task and never double-counts an answer.
//
// The state types are exported so the fabric can merge per-shard snapshots
// into the same wire format a single server produces, and split one back
// across shards on restore.

// SnapshotVersion guards against loading snapshots from incompatible
// builds.
const SnapshotVersion = 1

// TaskState is one task's durable state.
type TaskState struct {
	ID      int      `json:"id"`
	Spec    TaskSpec `json:"spec"`
	Answers [][]int  `json:"answers,omitempty"`
	Voters  []int    `json:"voters,omitempty"`
	Done    bool     `json:"done"`
}

// SnapshotState is the full durable state of one pool (a standalone server
// or one fabric shard).
type SnapshotState struct {
	Version      int                `json:"version"`
	NextTask     int                `json:"next_task"`
	NextWorker   int                `json:"next_worker"`
	Terminated   int                `json:"terminated"`
	RetiredCount int                `json:"retired_count"`
	Retired      []int              `json:"retired,omitempty"`
	Costs        metrics.Accounting `json:"costs"`
	Order        []int              `json:"order,omitempty"`
	Tasks        []TaskState        `json:"tasks,omitempty"`
}

// EncodeSnapshot serializes a snapshot state in the wire format.
func EncodeSnapshot(st SnapshotState) ([]byte, error) {
	return json.MarshalIndent(st, "", "  ")
}

// DecodeSnapshot parses and validates snapshot JSON. Every structural
// invariant is checked here so importing a validated state cannot fail
// halfway (the fabric imports one state per shard and must not end up
// partially restored).
func DecodeSnapshot(data []byte) (SnapshotState, error) {
	var st SnapshotState
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("server: decoding snapshot: %w", err)
	}
	if st.Version != SnapshotVersion {
		return st, fmt.Errorf("server: snapshot version %d, want %d", st.Version, SnapshotVersion)
	}
	seen := make(map[int]bool, len(st.Tasks))
	for _, ts := range st.Tasks {
		if ts.ID < 1 {
			return st, fmt.Errorf("server: snapshot task id %d out of range", ts.ID)
		}
		if len(ts.Spec.Records) == 0 {
			return st, fmt.Errorf("server: snapshot task %d has no records", ts.ID)
		}
		if len(ts.Answers) != len(ts.Voters) {
			return st, fmt.Errorf("server: snapshot task %d: %d answers but %d voters",
				ts.ID, len(ts.Answers), len(ts.Voters))
		}
		seen[ts.ID] = true
	}
	for _, tid := range st.Order {
		if !seen[tid] {
			return st, fmt.Errorf("server: snapshot order references unknown task %d", tid)
		}
	}
	for _, id := range st.Retired {
		if id < 1 {
			return st, fmt.Errorf("server: snapshot retired worker id %d out of range", id)
		}
	}
	return st, nil
}

// ExportState captures the shard's durable state (tasks, answers, counters,
// accounting).
func (s *Shard) ExportState() SnapshotState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SnapshotState{
		Version:      SnapshotVersion,
		NextTask:     s.nextTask,
		NextWorker:   s.nextWorker,
		Terminated:   s.terminated,
		RetiredCount: s.retiredCount,
		Costs:        s.costs,
		Order:        append([]int(nil), s.order...),
	}
	for id := range s.retired {
		st.Retired = append(st.Retired, id)
	}
	for _, tid := range s.order {
		u := s.tasks[tid]
		st.Tasks = append(st.Tasks, TaskState{
			ID:      u.id,
			Spec:    u.spec,
			Answers: u.answers,
			Voters:  u.voters,
			Done:    u.done,
		})
	}
	return st
}

// ImportState replaces the shard's durable state with a validated snapshot
// state (see DecodeSnapshot). All connected workers are dropped (they
// rejoin); unfinished tasks return to the queue. The id counters realign to
// this shard's stripe on the next allocation, so restoring a snapshot from
// a differently-sharded fabric never collides.
func (s *Shard) ImportState(st SnapshotState) {
	tasks := make(map[int]*workUnit, len(st.Tasks))
	for _, ts := range st.Tasks {
		tasks[ts.ID] = &workUnit{
			id:      ts.ID,
			spec:    ts.Spec,
			answers: ts.Answers,
			voters:  ts.Voters,
			active:  make(map[int]bool),
			done:    ts.Done,
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tasks = tasks
	s.order = append([]int(nil), st.Order...)
	// Rebuild the dispatch index from scratch: sequence numbers follow the
	// restored submission order, so FIFO-within-priority hand-out order
	// survives the round trip.
	s.dispatch = [2]dispatchPart{}
	s.nextSeq = 0
	for _, tid := range s.order {
		u := tasks[tid]
		s.nextSeq++
		u.seq = s.nextSeq
		s.reindex(u)
	}
	s.workers = make(map[int]*poolWorker)
	s.nextTask = st.NextTask
	s.nextWorker = st.NextWorker
	s.terminated = st.Terminated
	s.retiredCount = st.RetiredCount
	s.retired = make(map[int]bool, len(st.Retired))
	for _, id := range st.Retired {
		s.retired[id] = true
	}
	s.costs = st.Costs
	s.orphans = nil
	s.orphanCount.Store(0)
}

// Snapshot serializes the pool's durable state as JSON.
func (s *Shard) Snapshot() ([]byte, error) {
	return EncodeSnapshot(s.ExportState())
}

// Restore replaces the pool's durable state with a snapshot produced by
// Snapshot.
func (s *Shard) Restore(data []byte) error {
	st, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	s.ImportState(st)
	return nil
}

// handleSnapshot serves the durable state as JSON.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleRestore loads durable state from the request body.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var buf json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&buf); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading snapshot body: %w", err))
		return
	}
	if err := s.Restore(buf); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
