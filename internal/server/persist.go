package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/clamshell/clamshell/internal/metrics"
)

// Durability: the server can snapshot its task queue and accounting to JSON
// and restore it after a restart. Workers are deliberately not persisted —
// retainer sessions are live HTTP conversations that cannot survive a
// process restart; workers simply rejoin and the restored queue is routed
// to them. In-flight assignments at snapshot time are likewise dropped back
// to the queue (the same thing that happens when a worker times out), so a
// restore never loses a task and never double-counts an answer.

// snapshotVersion guards against loading snapshots from incompatible
// builds.
const snapshotVersion = 1

type taskSnapshot struct {
	ID      int      `json:"id"`
	Spec    TaskSpec `json:"spec"`
	Answers [][]int  `json:"answers,omitempty"`
	Voters  []int    `json:"voters,omitempty"`
	Done    bool     `json:"done"`
}

type snapshot struct {
	Version      int                `json:"version"`
	NextTask     int                `json:"next_task"`
	NextWorker   int                `json:"next_worker"`
	Terminated   int                `json:"terminated"`
	RetiredCount int                `json:"retired_count"`
	Retired      []int              `json:"retired,omitempty"`
	Costs        metrics.Accounting `json:"costs"`
	Order        []int              `json:"order,omitempty"`
	Tasks        []taskSnapshot     `json:"tasks,omitempty"`
}

// Snapshot serializes the server's durable state (tasks, answers, counters,
// accounting) as JSON.
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshot{
		Version:      snapshotVersion,
		NextTask:     s.nextTask,
		NextWorker:   s.nextWorker,
		Terminated:   s.terminated,
		RetiredCount: s.retiredCount,
		Costs:        s.costs,
		Order:        append([]int(nil), s.order...),
	}
	for id := range s.retired {
		snap.Retired = append(snap.Retired, id)
	}
	for _, tid := range s.order {
		u := s.tasks[tid]
		snap.Tasks = append(snap.Tasks, taskSnapshot{
			ID:      u.id,
			Spec:    u.spec,
			Answers: u.answers,
			Voters:  u.voters,
			Done:    u.done,
		})
	}
	return json.MarshalIndent(snap, "", "  ")
}

// Restore replaces the server's durable state with a snapshot produced by
// Snapshot. All connected workers are dropped (they rejoin); unfinished
// tasks return to the queue.
func (s *Server) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("server: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("server: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	tasks := make(map[int]*workUnit, len(snap.Tasks))
	for _, ts := range snap.Tasks {
		if len(ts.Spec.Records) == 0 {
			return fmt.Errorf("server: snapshot task %d has no records", ts.ID)
		}
		if len(ts.Answers) != len(ts.Voters) {
			return fmt.Errorf("server: snapshot task %d: %d answers but %d voters",
				ts.ID, len(ts.Answers), len(ts.Voters))
		}
		tasks[ts.ID] = &workUnit{
			id:      ts.ID,
			spec:    ts.Spec,
			answers: ts.Answers,
			voters:  ts.Voters,
			active:  make(map[int]bool),
			done:    ts.Done,
		}
	}
	for _, tid := range snap.Order {
		if _, ok := tasks[tid]; !ok {
			return fmt.Errorf("server: snapshot order references unknown task %d", tid)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.tasks = tasks
	s.order = append([]int(nil), snap.Order...)
	s.workers = make(map[int]*poolWorker)
	s.nextTask = snap.NextTask
	s.nextWorker = snap.NextWorker
	s.terminated = snap.Terminated
	s.retiredCount = snap.RetiredCount
	s.retired = make(map[int]bool, len(snap.Retired))
	for _, id := range snap.Retired {
		s.retired[id] = true
	}
	s.costs = snap.Costs
	return nil
}

// handleSnapshot serves the durable state as JSON.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleRestore loads durable state from the request body.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var buf json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&buf); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading snapshot body: %w", err))
		return
	}
	if err := s.Restore(buf); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
