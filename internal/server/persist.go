package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"github.com/clamshell/clamshell/internal/metrics"
)

// Durability: the server can snapshot its task queue and accounting to JSON
// and restore it after a restart. Workers are deliberately not persisted —
// retainer sessions are live HTTP conversations that cannot survive a
// process restart; workers simply rejoin and the restored queue is routed
// to them. In-flight assignments at snapshot time are likewise dropped back
// to the queue (the same thing that happens when a worker times out), so a
// restore never loses a task and never double-counts an answer.
//
// Durable state splits into two tiers. Live tasks carry everything: the
// record payloads, the answer set, the dispatch metadata. Completed tasks
// past the retention window are demoted to RetainedTask vote tallies —
// just the per-worker label vectors /api/consensus needs to keep judging
// worker reliability on full history — and their record payloads are
// dropped. The JSON snapshot here carries both tiers and remains the
// compatibility wire format for /api/snapshot and /api/restore; the
// journal.Store engine (see journal.go) persists the live tier per
// compaction and the tally tier append-only.
//
// The state types are exported so the fabric can merge per-shard snapshots
// into the same wire format a single server produces, and split one back
// across shards on restore.

// SnapshotVersion guards against loading snapshots from incompatible
// builds. Version 1 has grown two additive, omitempty fields since its
// introduction (TaskState.DoneAt and SnapshotState.Retained); decoders
// tolerate their absence, so every version-1 document ever written still
// loads. Anything that would change the meaning of existing fields must
// bump the version.
const SnapshotVersion = 1

// TaskState is one live task's durable state.
type TaskState struct {
	ID      int      `json:"id"`
	Spec    TaskSpec `json:"spec"`
	Answers [][]int  `json:"answers,omitempty"`
	Voters  []int    `json:"voters,omitempty"`
	Done    bool     `json:"done"`
	DoneAt  int64    `json:"done_at,omitempty"` // unix nanoseconds; 0 when unknown

	// Model provenance: a hybrid-plane auto-finalized task serves
	// ModelLabels as its consensus; Answers/Voters keep the human votes
	// gathered before the decision. Both omitempty — snapshots without the
	// hybrid plane are byte-identical to earlier builds.
	Model       bool  `json:"model,omitempty"`
	ModelLabels []int `json:"model_labels,omitempty"`
}

// RetainedTask is the compacted tally of a completed task past the
// retention window: the vote graph rows /api/consensus needs (who labeled
// what), the task's dimensions, and nothing else — the record payloads,
// the dominant share of a task's bytes, are gone.
//
// A tally past the (optional) aging horizon compacts once more, into a
// count-only aggregate: the consensus labels and answer count are frozen
// and the per-voter vectors dropped. Aged tallies still answer /api/result
// and still count toward the task totals; they no longer contribute votes
// to consensus re-estimation. All three aging fields are omitempty, so
// snapshots written before aging existed are byte-identical.
type RetainedTask struct {
	ID      int     `json:"id"`
	Records int     `json:"records"` // record count (payloads dropped)
	Classes int     `json:"classes"`
	Answers [][]int `json:"answers,omitempty"`
	Voters  []int   `json:"voters,omitempty"`
	DoneAt  int64   `json:"done_at,omitempty"`

	Aged        bool  `json:"aged,omitempty"`
	AnswerCount int   `json:"answer_count,omitempty"` // answers at aging time
	Consensus   []int `json:"consensus,omitempty"`    // majority labels at aging time (model answer for Model tallies)

	// Model marks a tally whose task was auto-finalized by the hybrid
	// plane; its Consensus is the model's answer, stored at demotion time
	// (aged or not), and its Answers/Voters are the human votes gathered
	// before the decision.
	Model bool `json:"model,omitempty"`
}

// SnapshotState is the full durable state of one pool (a standalone server
// or one fabric shard).
type SnapshotState struct {
	Version      int                `json:"version"`
	NextTask     int                `json:"next_task"`
	NextWorker   int                `json:"next_worker"`
	Terminated   int                `json:"terminated"`
	RetiredCount int                `json:"retired_count"`
	Retired      []int              `json:"retired,omitempty"`
	Costs        metrics.Accounting `json:"costs"`
	Order        []int              `json:"order,omitempty"`
	Tasks        []TaskState        `json:"tasks,omitempty"`
	Retained     []RetainedTask     `json:"retained,omitempty"`

	// AutoFinalized counts tasks finalized by the hybrid plane's model
	// (additive, omitempty: plain snapshots are unchanged).
	AutoFinalized int `json:"auto_finalized,omitempty"`
}

// EncodeSnapshot serializes a snapshot state in the wire format. The
// output is deterministic (struct field order, no maps), which the golden
// compatibility tests rely on.
func EncodeSnapshot(st SnapshotState) ([]byte, error) {
	return json.MarshalIndent(st, "", "  ")
}

// DecodeSnapshot parses and validates snapshot JSON. Every structural
// invariant is checked here so importing a validated state cannot fail
// halfway (the fabric imports one state per shard and must not end up
// partially restored).
func DecodeSnapshot(data []byte) (SnapshotState, error) {
	var st SnapshotState
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("server: decoding snapshot: %w", err)
	}
	if st.Version != SnapshotVersion {
		return st, fmt.Errorf("server: snapshot version %d, want %d", st.Version, SnapshotVersion)
	}
	seen := make(map[int]bool, len(st.Tasks)+len(st.Retained))
	for _, ts := range st.Tasks {
		if ts.ID < 1 {
			return st, fmt.Errorf("server: snapshot task id %d out of range", ts.ID)
		}
		if seen[ts.ID] {
			return st, fmt.Errorf("server: snapshot task %d appears twice", ts.ID)
		}
		if len(ts.Spec.Records) == 0 {
			return st, fmt.Errorf("server: snapshot task %d has no records", ts.ID)
		}
		if len(ts.Answers) != len(ts.Voters) {
			return st, fmt.Errorf("server: snapshot task %d: %d answers but %d voters",
				ts.ID, len(ts.Answers), len(ts.Voters))
		}
		for _, a := range ts.Answers {
			if len(a) != len(ts.Spec.Records) {
				return st, fmt.Errorf("server: snapshot task %d: answer with %d labels, want %d",
					ts.ID, len(a), len(ts.Spec.Records))
			}
		}
		if ts.Model {
			if !ts.Done {
				return st, fmt.Errorf("server: snapshot task %d is model-finalized but not done", ts.ID)
			}
			if len(ts.ModelLabels) != len(ts.Spec.Records) {
				return st, fmt.Errorf("server: snapshot task %d: model answer with %d labels, want %d",
					ts.ID, len(ts.ModelLabels), len(ts.Spec.Records))
			}
		} else if len(ts.ModelLabels) != 0 {
			return st, fmt.Errorf("server: snapshot task %d carries model labels without model provenance", ts.ID)
		}
		seen[ts.ID] = true
	}
	for _, rt := range st.Retained {
		// validateTally enforces the shared shape invariants; only the
		// cross-tier duplicate check is snapshot-specific.
		if err := validateTally(rt); err != nil {
			return st, err
		}
		if seen[rt.ID] {
			return st, fmt.Errorf("server: snapshot task %d is both live and retained", rt.ID)
		}
		seen[rt.ID] = true
	}
	for _, tid := range st.Order {
		if !seen[tid] {
			return st, fmt.Errorf("server: snapshot order references unknown task %d", tid)
		}
	}
	for _, id := range st.Retired {
		if id < 1 {
			return st, fmt.Errorf("server: snapshot retired worker id %d out of range", id)
		}
	}
	return st, nil
}

// ExportState captures the shard's full durable state: live tasks,
// retained tallies, counters and accounting.
func (s *Shard) ExportState() SnapshotState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exportLocked(true)
}

// exportLocked builds the durable state. full includes the retained
// tallies (the wire-format facade); the journal engine passes false
// because tallies are persisted once, append-only, in the store's
// retained log rather than re-serialized into every compaction snapshot —
// that is what keeps per-compaction cost O(live state). Callers hold mu.
func (s *Shard) exportLocked(full bool) SnapshotState {
	st := SnapshotState{
		Version:      SnapshotVersion,
		NextTask:     s.nextTask,
		NextWorker:   s.nextWorker,
		Terminated:   s.terminated,
		RetiredCount: s.retiredCount,
		Costs:        s.costs,
	}
	st.AutoFinalized = s.autoFinalized
	for id := range s.retired {
		st.Retired = append(st.Retired, id)
	}
	sort.Ints(st.Retired)
	// The order slice is ascending (per-shard ids are allocated
	// monotonically, and the tally overlay inserts in id position), so a
	// live-only export can walk the small live map and sort instead of
	// scanning the full history order — O(live), which is what keeps each
	// compaction's snapshot cost independent of how long the shard has run.
	walk := s.order
	if !full {
		walk = make([]int, 0, len(s.tasks))
		for tid := range s.tasks {
			walk = append(walk, tid)
		}
		sort.Ints(walk)
	}
	for _, tid := range walk {
		if u, ok := s.tasks[tid]; ok {
			ts := TaskState{
				ID:          u.id,
				Spec:        u.spec,
				Answers:     u.answers,
				Voters:      u.voters,
				Done:        u.done,
				Model:       u.model,
				ModelLabels: u.modelLabels,
			}
			if !u.doneAt.IsZero() {
				ts.DoneAt = u.doneAt.UnixNano()
			}
			st.Tasks = append(st.Tasks, ts)
			st.Order = append(st.Order, tid)
			continue
		}
		if t, ok := s.tallies[tid]; ok && full {
			st.Retained = append(st.Retained, *t)
			st.Order = append(st.Order, tid)
		}
	}
	return st
}

// ImportState replaces the shard's durable state with a validated snapshot
// state (see DecodeSnapshot). All connected workers are dropped (they
// rejoin); unfinished tasks return to the queue. The id counters realign to
// this shard's stripe on the next allocation, so restoring a snapshot from
// a differently-sharded fabric never collides.
func (s *Shard) ImportState(st SnapshotState) {
	tasks := make(map[int]*workUnit, len(st.Tasks))
	for _, ts := range st.Tasks {
		tasks[ts.ID] = &workUnit{
			id:          ts.ID,
			spec:        ts.Spec,
			answers:     ts.Answers,
			voters:      ts.Voters,
			active:      make(map[int]bool),
			done:        ts.Done,
			doneAt:      time.Unix(0, ts.DoneAt),
			model:       ts.Model,
			modelLabels: ts.ModelLabels,
		}
	}
	tallies := make(map[int]*RetainedTask, len(st.Retained))
	dirty := make(map[int]*RetainedTask, len(st.Retained))
	for i := range st.Retained {
		t := st.Retained[i]
		tallies[t.ID] = &t
		// Imported tallies are not in any store's retained log yet; they
		// stay dirty until a compaction commit persists them.
		dirty[t.ID] = &t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	s.tasks = tasks
	s.tallies = tallies
	s.talliesDirty = dirty
	s.agePending = nil
	for _, t := range tallies {
		s.enqueueForAging(t)
	}
	s.order = append([]int(nil), st.Order...)
	// Rebuild the dispatch index from scratch: sequence numbers follow the
	// restored submission order, so FIFO-within-priority hand-out order
	// survives the round trip. Retained ids stay in the order slice (the
	// consensus views walk it) but are never indexed — they are done.
	s.dispatch = [2]dispatchPart{}
	s.nextSeq = 0
	for _, tid := range s.order {
		u, ok := tasks[tid]
		if !ok {
			continue
		}
		s.nextSeq++
		u.seq = s.nextSeq
		if u.done && u.doneAt.UnixNano() == 0 {
			// Legacy snapshot without completion times: age from now, so
			// retention starts counting at restore.
			u.doneAt = now
		} else if !u.done {
			u.doneAt = time.Time{}
		}
		s.reindex(u)
	}
	s.workers = make(map[int]*poolWorker)
	s.poolSize.Store(0)
	s.nextExpiry = time.Time{}
	s.nextTask = st.NextTask
	s.nextWorker = st.NextWorker
	s.terminated = st.Terminated
	s.retiredCount = st.RetiredCount
	s.retired = make(map[int]bool, len(st.Retired))
	for _, id := range st.Retired {
		s.retired[id] = true
	}
	s.costs = st.Costs
	s.autoFinalized = st.AutoFinalized
	s.orphans = nil
	s.orphanCount.Store(0)
}

// Snapshot serializes the pool's durable state as JSON.
func (s *Shard) Snapshot() ([]byte, error) {
	return EncodeSnapshot(s.ExportState())
}

// Restore replaces the pool's durable state with a snapshot produced by
// Snapshot.
func (s *Shard) Restore(data []byte) error {
	st, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	s.ImportState(st)
	return nil
}

// handleSnapshot serves the durable state as JSON.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := s.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleRestore loads durable state from the request body.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var buf json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&buf); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading snapshot body: %w", err))
		return
	}
	if err := s.Restore(buf); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
