package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"
)

// The JSON/HTTP shim over Core: the compatibility and control transport.
// The five hot ops (join, enqueue, fetch, submit, leave/heartbeat — plus
// result) are registered here once and shared by the standalone Server and
// the fabric router, so the two HTTP surfaces cannot drift. The shim is
// scrubbed of per-op allocations: request bodies land in pooled buffers,
// int-field bodies go through a strict hand-rolled decoder instead of a
// map[string]int, responses are built in pooled buffers (canonical ones are
// preallocated), and the hot query strings are parsed without url.Values.

// RegisterCoreRoutes mounts the hot protocol endpoints for a Core
// implementation on mux. Cores that expose an observation plane (Obs) get
// per-op service-time sketches recorded around each handler; the clock is
// the Core's own, so fake-clock tests see deterministic (zero) durations.
func RegisterCoreRoutes(mux *http.ServeMux, c Core) {
	obs := coreObs(c)
	wrap := func(op Op, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
		if obs == nil {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			t0 := obs.now()
			h(w, r)
			obs.HTTP.Observe(op, obs.now().Sub(t0).Seconds())
		}
	}
	mux.HandleFunc("POST /api/join", wrap(OpKindJoin, func(w http.ResponseWriter, r *http.Request) { handleCoreJoin(w, r, c) }))
	mux.HandleFunc("POST /api/heartbeat", wrap(OpKindHeartbeat, func(w http.ResponseWriter, r *http.Request) { handleCoreHeartbeat(w, r, c) }))
	mux.HandleFunc("POST /api/leave", wrap(OpKindLeave, func(w http.ResponseWriter, r *http.Request) { handleCoreLeave(w, r, c) }))
	mux.HandleFunc("POST /api/tasks", wrap(OpKindEnqueue, func(w http.ResponseWriter, r *http.Request) { handleCoreEnqueue(w, r, c) }))
	mux.HandleFunc("GET /api/task", wrap(OpKindFetch, func(w http.ResponseWriter, r *http.Request) { handleCoreFetch(w, r, c) }))
	mux.HandleFunc("POST /api/submit", wrap(OpKindSubmit, func(w http.ResponseWriter, r *http.Request) { handleCoreSubmit(w, r, c) }))
	mux.HandleFunc("GET /api/result", wrap(OpKindResult, func(w http.ResponseWriter, r *http.Request) { handleCoreResult(w, r, c) }))
}

// bufPool recycles request-body and response-encoding buffers across
// requests on the hot path.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// readBody drains the request body into a pooled buffer. The caller must
// putBuf it back (after any retained slices have been copied out).
func readBody(r *http.Request) (*[]byte, error) {
	bp := getBuf()
	buf := *bp
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bp = buf
			return bp, nil
		}
		if err != nil {
			*bp = buf
			putBuf(bp)
			return nil, err
		}
	}
}

// Preallocated canonical responses (trailing newline matches the
// historical json.Encoder output).
var (
	respOK         = []byte("{\"ok\":true}\n")
	respAccepted   = []byte("{\"accepted\":true,\"terminated\":false}\n")
	respTerminated = []byte("{\"accepted\":false,\"terminated\":true}\n")
)

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeCoreErr writes the protocol's error body from a pooled buffer.
func writeCoreErr(w http.ResponseWriter, status int, err error) {
	bp := getBuf()
	b := append(*bp, `{"error":`...)
	b = appendJSONString(b, err.Error())
	b = append(b, '}', '\n')
	*bp = b
	writeRaw(w, status, b)
	putBuf(bp)
}

// appendJSONString appends s as a JSON string literal, escaping exactly the
// way encoding/json's default (HTML-escaping) encoder does.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"':
				b = append(b, '\\', '"')
			case c == '\\':
				b = append(b, '\\', '\\')
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\r':
				b = append(b, '\\', 'r')
			case c == '\t':
				b = append(b, '\\', 't')
			case c < 0x20 || c == '<' || c == '>' || c == '&':
				const hex = "0123456789abcdef"
				b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			default:
				b = append(b, c)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '2', '0', '2', hex[r&0xf])
			i += size
			continue
		}
		b = append(b, s[i:i+size]...)
		i += size
	}
	return append(b, '"')
}

// intQueryFast parses the single hot query parameter without building
// url.Values. The slow path (extra parameters, percent escapes) falls back
// to the stdlib parser; the error text matches the historical one.
func intQueryFast(r *http.Request, key string) (int, error) {
	q := r.URL.RawQuery
	if strings.HasPrefix(q, key) && len(q) > len(key) && q[len(key)] == '=' {
		val := q[len(key)+1:]
		if !strings.ContainsAny(val, "&%+;") {
			if v, err := strconv.Atoi(val); err == nil {
				return v, nil
			}
			return 0, fmt.Errorf("missing or bad query parameter %q", key)
		}
	}
	return intQuery(r, key)
}

// --- hot-op handlers ---

func handleCoreJoin(w http.ResponseWriter, r *http.Request, c Core) {
	bp, err := readBody(r)
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, fmt.Errorf("decoding join request: %w", err))
		return
	}
	name, err := decodeStringField(*bp, "name")
	putBuf(bp)
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, fmt.Errorf("decoding join request: %w", err))
		return
	}
	id := c.CoreJoin(name)
	if id == 0 {
		// A router with no reachable node admits nobody (see ErrUnavailable).
		writeCoreErr(w, http.StatusServiceUnavailable, ErrUnavailable)
		return
	}
	out := getBuf()
	b := append(*out, `{"worker_id":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, '}', '\n')
	*out = b
	writeRaw(w, http.StatusOK, b)
	putBuf(out)
}

func handleCoreHeartbeat(w http.ResponseWriter, r *http.Request, c Core) {
	id, ok := intBody(w, r, "decoding body")
	if !ok {
		return
	}
	if !c.CoreHeartbeat(id) {
		writeCoreErr(w, http.StatusNotFound, ErrUnknownWorker)
		return
	}
	writeRaw(w, http.StatusOK, respOK)
}

func handleCoreLeave(w http.ResponseWriter, r *http.Request, c Core) {
	id, ok := intBody(w, r, "decoding body")
	if !ok {
		return
	}
	c.CoreLeave(id)
	writeRaw(w, http.StatusOK, respOK)
}

// intBody reads and strictly decodes a {"worker_id":N} request body. On
// failure it writes the 400 response and reports false.
func intBody(w http.ResponseWriter, r *http.Request, errPrefix string) (int, bool) {
	bp, err := readBody(r)
	if err == nil {
		var id int
		id, err = decodeIntField(*bp, "worker_id")
		putBuf(bp)
		if err == nil {
			return id, true
		}
	}
	writeCoreErr(w, http.StatusBadRequest, fmt.Errorf("%s: %w", errPrefix, err))
	return 0, false
}

func handleCoreEnqueue(w http.ResponseWriter, r *http.Request, c Core) {
	bp, err := readBody(r)
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, fmt.Errorf("decoding tasks: %w", err))
		return
	}
	specs, err := decodeTaskSpecs(*bp)
	putBuf(bp)
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, fmt.Errorf("decoding tasks: %w", err))
		return
	}
	ids, err := c.CoreEnqueue(specs)
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, err)
		return
	}
	out := getBuf()
	b := append(*out, `{"task_ids":[`...)
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	b = append(b, ']', '}', '\n')
	*out = b
	writeRaw(w, http.StatusOK, b)
	putBuf(out)
}

func handleCoreFetch(w http.ResponseWriter, r *http.Request, c Core) {
	id, err := intQueryFast(r, "worker_id")
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, err)
		return
	}
	a, disp := c.CoreFetch(id)
	switch disp {
	case FetchNoWork:
		w.WriteHeader(http.StatusNoContent)
	case FetchGoneRetired:
		writeCoreErr(w, http.StatusGone, ErrNoMoreTasks)
	case FetchNoWorker:
		writeCoreErr(w, http.StatusNotFound, ErrUnknownWorker)
	case FetchUnavailable:
		writeCoreErr(w, http.StatusServiceUnavailable, ErrUnavailable)
	default:
		out := getBuf()
		b := appendAssignment(*out, a)
		*out = b
		writeRaw(w, http.StatusOK, b)
		putBuf(out)
	}
}

// appendAssignment encodes the assignment payload.
func appendAssignment(b []byte, a Assignment) []byte {
	b = append(b, `{"task_id":`...)
	b = strconv.AppendInt(b, int64(a.TaskID), 10)
	b = append(b, `,"records":[`...)
	for i, rec := range a.Records {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, rec)
	}
	b = append(b, `],"classes":`...)
	b = strconv.AppendInt(b, int64(a.Classes), 10)
	return append(b, '}', '\n')
}

func handleCoreSubmit(w http.ResponseWriter, r *http.Request, c Core) {
	bp, err := readBody(r)
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, fmt.Errorf("decoding answer: %w", err))
		return
	}
	workerID, taskID, labels, err := decodeSubmitBody(*bp)
	putBuf(bp)
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, fmt.Errorf("decoding answer: %w", err))
		return
	}
	reply, cerr := c.CoreSubmit(workerID, taskID, labels)
	switch {
	case cerr != nil && cerr.NotFound:
		writeCoreErr(w, http.StatusNotFound, cerr.Err)
	case cerr != nil:
		writeCoreErr(w, http.StatusBadRequest, cerr.Err)
	case reply.Terminated:
		writeRaw(w, http.StatusOK, respTerminated)
	default:
		writeRaw(w, http.StatusOK, respAccepted)
	}
}

func handleCoreResult(w http.ResponseWriter, r *http.Request, c Core) {
	id, err := intQueryFast(r, "task_id")
	if err != nil {
		writeCoreErr(w, http.StatusBadRequest, err)
		return
	}
	st, ok := c.CoreResult(id)
	if !ok {
		writeCoreErr(w, http.StatusNotFound, ErrUnknownTask)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// --- strict request decoding ---
//
// The historical int-field decoder unmarshalled into a map[string]int: one
// map allocation per request, and duplicate keys silently last-wins. The
// decoders below scan the raw bytes: no intermediate containers, duplicate
// occurrences of the wanted field rejected, unknown fields skipped whatever
// their type (matching the old decoder's tolerance).

var (
	errBadJSON   = errors.New("malformed JSON body")
	errNotInt    = errors.New("not an integer")
	errNotNumber = errors.New("not a number")
	errNotArray  = errors.New("not an array")
)

type jsonCursor struct {
	b []byte
	i int
}

func (c *jsonCursor) ws() {
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case ' ', '\t', '\n', '\r':
			c.i++
		default:
			return
		}
	}
}

func (c *jsonCursor) expect(ch byte) bool {
	c.ws()
	if c.i < len(c.b) && c.b[c.i] == ch {
		c.i++
		return true
	}
	return false
}

func (c *jsonCursor) peek() (byte, bool) {
	c.ws()
	if c.i < len(c.b) {
		return c.b[c.i], true
	}
	return 0, false
}

// null consumes the literal null if it is the next token. encoding/json
// treated null as "leave the zero value" everywhere, and the decoders
// preserve that on the compatibility surface (JS-style clients serialize
// absent fields as null).
func (c *jsonCursor) null() bool {
	c.ws()
	if len(c.b)-c.i < 4 || string(c.b[c.i:c.i+4]) != "null" {
		return false
	}
	if c.i+4 < len(c.b) {
		switch c.b[c.i+4] {
		case ',', '}', ']', ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	c.i += 4
	return true
}

// str parses a JSON string literal, returning its decoded value. unescape
// is skipped for the common escape-free case (the returned string then
// aliases c.b — callers copy if they retain it; decodeStringField and
// decodeTaskSpecs convert to string, which copies).
func (c *jsonCursor) str() (string, error) {
	if !c.expect('"') {
		return "", errBadJSON
	}
	start := c.i
	esc := false
	for c.i < len(c.b) {
		ch := c.b[c.i]
		if ch == '\\' {
			esc = true
			c.i += 2
			continue
		}
		if ch == '"' {
			raw := c.b[start:c.i]
			c.i++
			if !esc {
				return string(raw), nil
			}
			return unescapeJSON(raw)
		}
		c.i++
	}
	return "", errBadJSON
}

func unescapeJSON(raw []byte) (string, error) {
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); {
		ch := raw[i]
		if ch != '\\' {
			out = append(out, ch)
			i++
			continue
		}
		if i+1 >= len(raw) {
			return "", errBadJSON
		}
		switch raw[i+1] {
		case '"', '\\', '/':
			out = append(out, raw[i+1])
			i += 2
		case 'n':
			out = append(out, '\n')
			i += 2
		case 't':
			out = append(out, '\t')
			i += 2
		case 'r':
			out = append(out, '\r')
			i += 2
		case 'b':
			out = append(out, '\b')
			i += 2
		case 'f':
			out = append(out, '\f')
			i += 2
		case 'u':
			if i+6 > len(raw) {
				return "", errBadJSON
			}
			v, err := strconv.ParseUint(string(raw[i+2:i+6]), 16, 32)
			if err != nil {
				return "", errBadJSON
			}
			r := rune(v)
			i += 6
			if utf16IsHighSurrogate(r) && i+6 <= len(raw) && raw[i] == '\\' && raw[i+1] == 'u' {
				if v2, err := strconv.ParseUint(string(raw[i+2:i+6]), 16, 32); err == nil && utf16IsLowSurrogate(rune(v2)) {
					r = 0x10000 + (r-0xD800)<<10 + (rune(v2) - 0xDC00)
					i += 6
				}
			}
			out = utf8.AppendRune(out, r)
		default:
			return "", errBadJSON
		}
	}
	return string(out), nil
}

// valueStr parses a string at a value position (null = "").
func (c *jsonCursor) valueStr() (string, error) {
	if c.null() {
		return "", nil
	}
	return c.str()
}

func utf16IsHighSurrogate(r rune) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r rune) bool  { return r >= 0xDC00 && r < 0xE000 }

// integer parses a JSON number that must be an integer (null = 0).
func (c *jsonCursor) integer() (int, error) {
	if c.null() {
		return 0, nil
	}
	c.ws()
	start := c.i
	if c.i < len(c.b) && (c.b[c.i] == '-' || c.b[c.i] == '+') {
		c.i++
	}
	for c.i < len(c.b) {
		ch := c.b[c.i]
		if ch >= '0' && ch <= '9' {
			c.i++
			continue
		}
		if ch == '.' || ch == 'e' || ch == 'E' {
			return 0, errNotInt
		}
		break
	}
	v, err := strconv.Atoi(string(c.b[start:c.i]))
	if err != nil {
		return 0, errNotInt
	}
	return v, nil
}

// number parses a JSON number as float64 (null = 0). Parsing goes through
// strconv.ParseFloat, so the shortest-representation values the encoder
// emits round-trip to the identical bit pattern — the hybrid plane's
// replay determinism depends on that.
func (c *jsonCursor) number() (float64, error) {
	if c.null() {
		return 0, nil
	}
	c.ws()
	start := c.i
	for c.i < len(c.b) {
		switch ch := c.b[c.i]; {
		case ch >= '0' && ch <= '9',
			ch == '-', ch == '+', ch == '.', ch == 'e', ch == 'E':
			c.i++
		default:
			goto parsed
		}
	}
parsed:
	v, err := strconv.ParseFloat(string(c.b[start:c.i]), 64)
	if err != nil {
		return 0, errNotNumber
	}
	return v, nil
}

// floatArray parses a JSON array of numbers (null = nil, null element = 0).
func (c *jsonCursor) floatArray() ([]float64, error) {
	if c.null() {
		return nil, nil
	}
	ch, ok := c.peek()
	if !ok || ch != '[' {
		return nil, errNotArray
	}
	c.i++
	if c.expect(']') {
		return []float64{}, nil
	}
	var out []float64
	for {
		v, err := c.number()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if c.expect(',') {
			continue
		}
		if c.expect(']') {
			return out, nil
		}
		return nil, errBadJSON
	}
}

// floatMatrix parses a JSON array of number arrays (null = nil).
func (c *jsonCursor) floatMatrix() ([][]float64, error) {
	if c.null() {
		return nil, nil
	}
	ch, ok := c.peek()
	if !ok || ch != '[' {
		return nil, errNotArray
	}
	c.i++
	if c.expect(']') {
		return [][]float64{}, nil
	}
	var out [][]float64
	for {
		row, err := c.floatArray()
		if err != nil {
			return nil, err
		}
		out = append(out, row)
		if c.expect(',') {
			continue
		}
		if c.expect(']') {
			return out, nil
		}
		return nil, errBadJSON
	}
}

// skipValue advances past one JSON value of any type.
func (c *jsonCursor) skipValue() error {
	ch, ok := c.peek()
	if !ok {
		return errBadJSON
	}
	switch ch {
	case '"':
		_, err := c.str()
		return err
	case '{':
		return c.skipContainer('{', '}')
	case '[':
		return c.skipContainer('[', ']')
	default:
		start := c.i
		for c.i < len(c.b) {
			switch c.b[c.i] {
			case ',', '}', ']', ' ', '\t', '\n', '\r':
				if c.i == start {
					return errBadJSON
				}
				return nil
			}
			c.i++
		}
		if c.i == start {
			return errBadJSON
		}
		return nil
	}
}

func (c *jsonCursor) skipContainer(open, close byte) error {
	if !c.expect(open) {
		return errBadJSON
	}
	depth := 1
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case '"':
			if _, err := c.str(); err != nil {
				return err
			}
			continue
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				c.i++
				return nil
			}
		}
		c.i++
	}
	return errBadJSON
}

// object iterates the members of a JSON object, calling fn with each key.
// fn must consume the member's value (or return an error). A literal null
// where the object is expected reads as an object with no members.
func (c *jsonCursor) object(fn func(key string) error) error {
	if c.null() {
		return nil
	}
	if !c.expect('{') {
		return errBadJSON
	}
	if c.expect('}') {
		return nil
	}
	for {
		key, err := c.str()
		if err != nil {
			return err
		}
		if !c.expect(':') {
			return errBadJSON
		}
		if err := fn(key); err != nil {
			return err
		}
		if c.expect(',') {
			continue
		}
		if c.expect('}') {
			return nil
		}
		return errBadJSON
	}
}

// decodeIntField extracts one required integer field from a JSON object
// body. Unknown fields are skipped; a duplicate occurrence of the wanted
// field is rejected instead of silently last-wins.
func decodeIntField(body []byte, field string) (int, error) {
	c := jsonCursor{b: body}
	val, seen := 0, false
	err := c.object(func(key string) error {
		if key != field {
			return c.skipValue()
		}
		if seen {
			return fmt.Errorf("duplicate field %q", field)
		}
		seen = true
		v, err := c.integer()
		if err != nil {
			return fmt.Errorf("field %q: %w", field, err)
		}
		val = v
		return nil
	})
	if err != nil {
		return 0, err
	}
	if !seen {
		return 0, fmt.Errorf("missing field %q", field)
	}
	return val, nil
}

// decodeStringField extracts one string field from a JSON object body (""
// when absent, mirroring the historical struct decode).
func decodeStringField(body []byte, field string) (string, error) {
	c := jsonCursor{b: body}
	val, seen := "", false
	err := c.object(func(key string) error {
		if key != field {
			return c.skipValue()
		}
		if seen {
			return fmt.Errorf("duplicate field %q", field)
		}
		seen = true
		v, err := c.valueStr()
		if err != nil {
			return fmt.Errorf("field %q: %w", field, err)
		}
		val = v
		return nil
	})
	if err != nil {
		return "", err
	}
	return val, nil
}

// intArray parses a JSON array of integers (null = nil, null element = 0).
func (c *jsonCursor) intArray() ([]int, error) {
	if c.null() {
		return nil, nil
	}
	ch, ok := c.peek()
	if !ok || ch != '[' {
		return nil, errNotArray
	}
	c.i++
	if c.expect(']') {
		return []int{}, nil
	}
	var out []int
	for {
		v, err := c.integer()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if c.expect(',') {
			continue
		}
		if c.expect(']') {
			return out, nil
		}
		return nil, errBadJSON
	}
}

// decodeSubmitBody strictly decodes {"worker_id":N,"task_id":N,"labels":[..]}.
func decodeSubmitBody(body []byte) (workerID, taskID int, labels []int, err error) {
	c := jsonCursor{b: body}
	var seenW, seenT, seenL bool
	err = c.object(func(key string) error {
		switch key {
		case "worker_id":
			if seenW {
				return errors.New(`duplicate field "worker_id"`)
			}
			seenW = true
			v, err := c.integer()
			if err != nil {
				return fmt.Errorf(`field "worker_id": %w`, err)
			}
			workerID = v
			return nil
		case "task_id":
			if seenT {
				return errors.New(`duplicate field "task_id"`)
			}
			seenT = true
			v, err := c.integer()
			if err != nil {
				return fmt.Errorf(`field "task_id": %w`, err)
			}
			taskID = v
			return nil
		case "labels":
			if seenL {
				return errors.New(`duplicate field "labels"`)
			}
			seenL = true
			v, err := c.intArray()
			if err != nil {
				return fmt.Errorf(`field "labels": %w`, err)
			}
			labels = v
			return nil
		default:
			return c.skipValue()
		}
	})
	if err != nil {
		return 0, 0, nil, err
	}
	return workerID, taskID, labels, nil
}

// stringArray parses a JSON array of strings (null = nil, null element = "").
func (c *jsonCursor) stringArray() ([]string, error) {
	if c.null() {
		return nil, nil
	}
	ch, ok := c.peek()
	if !ok || ch != '[' {
		return nil, errNotArray
	}
	c.i++
	if c.expect(']') {
		return []string{}, nil
	}
	var out []string
	for {
		v, err := c.valueStr()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if c.expect(',') {
			continue
		}
		if c.expect(']') {
			return out, nil
		}
		return nil, errBadJSON
	}
}

// decodeTaskSpecs strictly decodes {"tasks":[{records, classes, quorum,
// priority, features}, ...]}.
func decodeTaskSpecs(body []byte) ([]TaskSpec, error) {
	c := jsonCursor{b: body}
	var specs []TaskSpec
	seenTasks := false
	err := c.object(func(key string) error {
		if key != "tasks" {
			return c.skipValue()
		}
		if seenTasks {
			return errors.New(`duplicate field "tasks"`)
		}
		seenTasks = true
		if c.null() {
			return nil
		}
		ch, ok := c.peek()
		if !ok || ch != '[' {
			return fmt.Errorf(`field "tasks": %w`, errNotArray)
		}
		c.i++
		if c.expect(']') {
			return nil
		}
		for {
			var spec TaskSpec
			err := c.object(func(fkey string) error {
				switch fkey {
				case "records":
					recs, err := c.stringArray()
					if err != nil {
						return fmt.Errorf(`field "records": %w`, err)
					}
					spec.Records = recs
					return nil
				case "classes":
					v, err := c.integer()
					if err != nil {
						return fmt.Errorf(`field "classes": %w`, err)
					}
					spec.Classes = v
					return nil
				case "quorum":
					v, err := c.integer()
					if err != nil {
						return fmt.Errorf(`field "quorum": %w`, err)
					}
					spec.Quorum = v
					return nil
				case "priority":
					v, err := c.integer()
					if err != nil {
						return fmt.Errorf(`field "priority": %w`, err)
					}
					spec.Priority = v
					return nil
				case "features":
					m, err := c.floatMatrix()
					if err != nil {
						return fmt.Errorf(`field "features": %w`, err)
					}
					spec.Features = m
					return nil
				default:
					return c.skipValue()
				}
			})
			if err != nil {
				return err
			}
			specs = append(specs, spec)
			if c.expect(',') {
				continue
			}
			if c.expect(']') {
				return nil
			}
			return errBadJSON
		}
	})
	if err != nil {
		return nil, err
	}
	return specs, nil
}
