package server

import (
	"fmt"
	"strings"
	"testing"

	"github.com/clamshell/clamshell/internal/sketch"
)

// The binary export round-trips digests exactly, and the strict decoder
// rejects every malformed shape: wrong version, truncation at each layer,
// oversized names, inflated entry counts, and trailing bytes.
func TestSketchExportRoundTripAndRejections(t *testing.T) {
	d1 := sketch.New(100)
	d2 := sketch.New(100)
	for i := 0; i < 1000; i++ {
		d1.Add(float64(i))
		d2.Add(float64(i) * 0.001)
	}
	in := []NamedSketch{
		{Name: "clamshell_handout_wait_seconds", Digest: d1},
		{Name: `clamshell_op_latency_seconds{transport="wire",op="submit"}`, Digest: d2},
	}
	data := EncodeSketchExport(in)

	out, err := DecodeSketchExport(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i, e := range out {
		if e.Name != in[i].Name {
			t.Fatalf("entry %d name = %q, want %q", i, e.Name, in[i].Name)
		}
		if e.Digest.Count() != in[i].Digest.Count() {
			t.Fatalf("entry %d count = %d, want %d", i, e.Digest.Count(), in[i].Digest.Count())
		}
		for _, q := range []float64{0.5, 0.99} {
			if got, want := e.Digest.Quantile(q), in[i].Digest.Quantile(q); got != want {
				t.Fatalf("entry %d q%g = %g, want %g", i, q, got, want)
			}
		}
	}

	bad := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "empty"},
		{"version", append([]byte{99}, data[1:]...), "version"},
		{"truncated", data[:len(data)-1], ""},
		{"trailing", append(append([]byte(nil), data...), 0), "trailing"},
		{"count past payload", []byte{1, 100}, "exceeds payload"},
	}
	longName := EncodeSketchExport([]NamedSketch{{Name: strings.Repeat("x", 300), Digest: d1}})
	bad = append(bad, struct {
		name string
		data []byte
		want string
	}{"oversized name", longName, "name length"})
	for _, tc := range bad {
		if _, err := DecodeSketchExport(tc.data); err == nil {
			t.Errorf("%s: decode accepted malformed input", tc.name)
		} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// Per-connection wire accounting: reconnects from one remote accumulate
// into the same cell, tracking caps at connTrackMax distinct remotes with
// the rest aggregating under "other", and the snapshot is sorted.
func TestConnStatsCapAndAccumulation(t *testing.T) {
	o := NewObs(nil)
	a := o.Conn("10.0.0.1:4000")
	a.Ops.Add(2)
	if o.Conn("10.0.0.1:4000") != a {
		t.Fatal("reconnect from the same remote got a fresh cell")
	}

	for i := 0; i < connTrackMax+10; i++ {
		o.Conn(fmt.Sprintf("10.0.0.2:%d", i)).Ops.Add(1)
	}
	over := o.Conn("10.0.0.3:1")
	if over != o.Conn("10.0.0.4:1") {
		t.Fatal("remotes past the cap did not share the overflow cell")
	}
	over.DecodeErrors.Add(5)

	snap := o.ConnSnapshot()
	if len(snap) != connTrackMax+1 {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), connTrackMax+1)
	}
	var sawOther, sawFirst bool
	for i, cc := range snap {
		if i > 0 && snap[i-1].Remote >= cc.Remote {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Remote, cc.Remote)
		}
		switch cc.Remote {
		case connOverflow:
			sawOther = true
			if cc.DecodeErrors != 5 {
				t.Fatalf("overflow decode errors = %d, want 5", cc.DecodeErrors)
			}
		case "10.0.0.1:4000":
			sawFirst = true
			if cc.Ops != 2 {
				t.Fatalf("first remote ops = %d, want 2", cc.Ops)
			}
		}
	}
	if !sawOther || !sawFirst {
		t.Fatalf("snapshot missing expected remotes (other=%v first=%v)", sawOther, sawFirst)
	}
}
