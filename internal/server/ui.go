package server

import "net/http"

// A minimal built-in worker UI, served at GET /: a human worker can join
// the retainer pool from a browser, wait for work (the page polls
// /api/task, exactly like the paper's retainer tasks kept workers ready),
// and label records with one click per class. This is the counterpart of
// the MTurk ExternalQuestion iframe the paper's deployment used; any real
// frontend would replace it, but the server is fully usable without one.

// handleUI serves the worker page.
func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	WorkerUI(w, r)
}

// WorkerUI serves the built-in worker page. Exported so the fabric router
// can serve the identical UI.
func WorkerUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(workerPage))
}

const workerPage = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CLAMShell worker</title>
<style>
  body { font-family: system-ui, sans-serif; max-width: 40rem; margin: 3rem auto; padding: 0 1rem; }
  #status { color: #666; margin: 1rem 0; }
  .record { border: 1px solid #ccc; border-radius: 6px; padding: 1rem; margin: 1rem 0; }
  .record .payload { font-size: 1.2rem; margin-bottom: .75rem; white-space: pre-wrap; }
  button { font-size: 1rem; padding: .4rem 1rem; margin-right: .5rem; cursor: pointer; }
  button.selected { background: #2563eb; color: white; }
  #submit { margin-top: 1rem; }
  #join-form input { font-size: 1rem; padding: .3rem; }
</style>
</head>
<body>
<h1>CLAMShell worker</h1>
<div id="join-form">
  <label>Name: <input id="name" value="worker"></label>
  <button onclick="join()">Join the pool</button>
</div>
<div id="status">Not in the pool.</div>
<div id="task"></div>
<script>
let workerId = null, current = null, labels = [];

async function join() {
  const name = document.getElementById('name').value || 'worker';
  const r = await fetch('/api/join', {method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({name})});
  const body = await r.json();
  workerId = body.worker_id;
  document.getElementById('join-form').style.display = 'none';
  setStatus('In the pool as worker ' + workerId + '. Waiting for work…');
  setInterval(heartbeat, 30000);
  poll();
}

function setStatus(msg) { document.getElementById('status').textContent = msg; }

async function heartbeat() {
  if (workerId === null) return;
  await fetch('/api/heartbeat', {method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({worker_id: workerId})});
}

async function poll() {
  if (workerId === null) return;
  if (current !== null) { setTimeout(poll, 1000); return; }
  const r = await fetch('/api/task?worker_id=' + workerId);
  if (r.status === 200) {
    current = await r.json();
    labels = new Array(current.records.length).fill(-1);
    render();
    setStatus('Task ' + current.task_id + ': label every record, then submit.');
  } else if (r.status === 410) {
    setStatus('No more tasks available for you. Thanks for your work!');
    return;
  }
  setTimeout(poll, 1000);
}

function render() {
  const div = document.getElementById('task');
  div.innerHTML = '';
  current.records.forEach((rec, i) => {
    const box = document.createElement('div');
    box.className = 'record';
    const payload = document.createElement('div');
    payload.className = 'payload';
    payload.textContent = rec;
    box.appendChild(payload);
    for (let c = 0; c < current.classes; c++) {
      const b = document.createElement('button');
      b.textContent = 'class ' + c;
      b.onclick = () => { labels[i] = c; render(); };
      if (labels[i] === c) b.className = 'selected';
      box.appendChild(b);
    }
    div.appendChild(box);
  });
  const submit = document.createElement('button');
  submit.id = 'submit';
  submit.textContent = 'Submit labels';
  submit.disabled = labels.includes(-1);
  submit.onclick = submitLabels;
  div.appendChild(submit);
}

async function submitLabels() {
  const r = await fetch('/api/submit', {method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({worker_id: workerId, task_id: current.task_id, labels})});
  const body = await r.json();
  setStatus(body.terminated
    ? 'That task was finished by a faster worker — you are still paid. Waiting…'
    : 'Submitted. Waiting for the next task…');
  current = null;
  document.getElementById('task').innerHTML = '';
}
</script>
</body>
</html>
`
