package server

import "github.com/clamshell/clamshell/internal/journal"

// The dispatch index: the shard's pending work, pre-sorted for the hand-out
// hot path. Where the server once rescanned a flat pending queue on every
// poll — O(everything pending) under the shard lock — the index keeps each
// pickable task filed under (partition, priority) so a pick reads the front
// of the highest-priority bucket: O(1) in the common case.
//
// Two partitions mirror the protocol's hand-out order:
//
//   - starved: tasks still missing primary answers (fewer active
//     assignments than answers needed). Handed out first, everywhere.
//   - speculative: tasks whose primary slots are covered but which may
//     still receive straggler duplicates under SpeculationLimit.
//
// Tasks that are neither (saturated with assignments, or complete) are not
// indexed at all — a standing backlog of covered tasks and any amount of
// completed history cost the hand-out path nothing, which is exactly where
// the old scan melted down.
//
// Within a partition, buckets are keyed by the task's current priority;
// across buckets picks go in descending priority; within a bucket tasks are
// ordered by submission sequence (FIFO), matching the historical scan's
// "higher priority first, FIFO within a priority" order exactly. Priority
// changes only through repriLocked, which pulls the unit out of its bucket
// before mutating the spec and refiles it after — a unit is always filed
// under the priority its spec carries.
//
// Migration is eager. reindex recomputes a task's partition after every
// mutation of its active set, answer count or done flag; when the partition
// changes, the task's entry is removed from its old bucket (each workUnit
// tracks its heap position, so removal is O(log bucket)) and pushed into
// the new one. A task therefore has exactly one index entry while pickable
// and none otherwise — the index holds no garbage and its memory is
// bounded by the live pickable set.

// dispatchState names the partition a task currently belongs to.
type dispatchState int8

const (
	// dispatchNone: not pickable (complete, or saturated with active
	// assignments). Deliberately the zero value: a freshly created workUnit
	// is unindexed until the first reindex files it.
	dispatchNone dispatchState = iota
	dispatchStarved
	dispatchSpeculative
)

// dispatchPart is one partition: per-priority FIFO buckets plus the list of
// priorities present, kept sorted descending so picks walk best-first.
// Buckets emptied by migrations linger until the next pick over the
// partition sweeps them out.
type dispatchPart struct {
	buckets map[int]*dispatchBucket
	prios   []int
}

// dispatchBucket is the pending set for one (partition, priority): a
// min-heap on submission sequence, so the front is the oldest task — FIFO.
// Heap positions are mirrored into workUnit.heapPos so a migrating task
// can be removed from the middle without a scan.
type dispatchBucket struct {
	h []*workUnit
}

func (b *dispatchBucket) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.h[parent].seq <= b.h[i].seq {
			return
		}
		b.swap(parent, i)
		i = parent
	}
}

func (b *dispatchBucket) down(i int) {
	for {
		small := i
		if l := 2*i + 1; l < len(b.h) && b.h[l].seq < b.h[small].seq {
			small = l
		}
		if r := 2*i + 2; r < len(b.h) && b.h[r].seq < b.h[small].seq {
			small = r
		}
		if small == i {
			return
		}
		b.swap(i, small)
		i = small
	}
}

func (b *dispatchBucket) swap(i, j int) {
	b.h[i], b.h[j] = b.h[j], b.h[i]
	b.h[i].heapPos = i
	b.h[j].heapPos = j
}

func (b *dispatchBucket) push(u *workUnit) {
	u.heapPos = len(b.h)
	b.h = append(b.h, u)
	b.up(u.heapPos)
}

// removeAt deletes and returns the entry at heap index i.
func (b *dispatchBucket) removeAt(i int) *workUnit {
	u := b.h[i]
	last := len(b.h) - 1
	if i != last {
		b.h[i] = b.h[last]
		b.h[i].heapPos = i
	}
	b.h[last] = nil
	b.h = b.h[:last]
	if i < last {
		b.down(i)
		b.up(i)
	}
	u.heapPos = -1
	return u
}

// push files a task under its priority bucket, creating the bucket (and
// registering its priority in descending order) on first use.
func (p *dispatchPart) push(u *workUnit) {
	if p.buckets == nil {
		//clamshell:hotpath-ok lazy bucket map, allocated once per dispatch part
		p.buckets = make(map[int]*dispatchBucket)
	}
	prio := u.spec.Priority
	b := p.buckets[prio]
	if b == nil {
		b = &dispatchBucket{}
		p.buckets[prio] = b
		i := 0
		for i < len(p.prios) && p.prios[i] > prio {
			i++
		}
		p.prios = append(p.prios, 0)
		copy(p.prios[i+1:], p.prios[i:])
		p.prios[i] = prio
	}
	b.push(u)
}

// remove deletes a task's entry from its priority bucket.
func (p *dispatchPart) remove(u *workUnit) {
	p.buckets[u.spec.Priority].removeAt(u.heapPos)
}

// dispatchStateOf classifies a task for the index, mirroring the historical
// scan's cases exactly: starved while active assignments are fewer than
// answers still needed; speculative while at least one assignment is out
// and the straggler-duplicate cap has room; otherwise unindexed.
func (s *Shard) dispatchStateOf(u *workUnit) dispatchState {
	if u.done {
		return dispatchNone
	}
	need := u.needed()
	switch a := len(u.active); {
	case a < need:
		return dispatchStarved
	case a > 0 && a < need+s.cfg.SpeculationLimit:
		return dispatchSpeculative
	}
	return dispatchNone
}

// reindex refiles a task after any change to its done flag, answer count or
// active set, migrating its single index entry between partitions (or in
// and out of the index) as its classification moves.
func (s *Shard) reindex(u *workUnit) {
	st := s.dispatchStateOf(u)
	if st == u.dstate {
		return
	}
	if u.dstate != dispatchNone {
		s.dispatch[u.dstate-1].remove(u)
	}
	u.dstate = st
	if st != dispatchNone {
		s.dispatch[st-1].push(u)
	}
}

// pickPart returns the best task in the given partition a worker may take:
// highest priority, oldest submission first, excluding tasks the worker is
// already assigned or has already answered. Excluded tasks are set aside
// and restored, so the cost of a pick is O(1) plus the handful of tasks
// this worker is personally attached to. Buckets emptied by migrations are
// swept out in passing. Callers hold mu.
func (s *Shard) pickPart(st dispatchState, workerID int) *workUnit {
	part := &s.dispatch[st-1]
	for i := 0; i < len(part.prios); {
		prio := part.prios[i]
		b := part.buckets[prio]
		if len(b.h) == 0 {
			delete(part.buckets, prio)
			part.prios = append(part.prios[:i], part.prios[i+1:]...)
			continue
		}
		var skipped []*workUnit
		var found *workUnit
		for len(b.h) > 0 {
			top := b.h[0]
			if top.active[workerID] || s.answered(top, workerID) {
				skipped = append(skipped, b.removeAt(0))
				continue
			}
			found = top
			break
		}
		for _, u := range skipped {
			b.push(u)
		}
		if found != nil {
			return found
		}
		i++
	}
	return nil
}

// pick chooses a task for the worker: starved tasks first, then speculative
// duplicates under the cap. Callers hold mu.
func (s *Shard) pick(workerID int) *workUnit {
	if u := s.pickPart(dispatchStarved, workerID); u != nil {
		return u
	}
	return s.pickPart(dispatchSpeculative, workerID)
}

// assign marks a picked task active for the worker and refiles it (an
// assignment can move a task starved→speculative or out of the index
// entirely). The assignment is journaled for the audit trail only —
// in-flight assignments do not survive a restart. Callers hold mu.
//
//clamshell:locked callers hold mu
func (s *Shard) assign(u *workUnit, workerID int) {
	u.active[workerID] = true
	s.logOp(journal.Op{T: journal.OpAssign, Task: u.id, Worker: workerID})
	s.reindex(u)
}
