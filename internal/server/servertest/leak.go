// Package servertest holds zero-dependency test utilities shared by the
// fabric, wire, journal, and server test suites.
package servertest

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// VerifyNone snapshots the live goroutines and registers a cleanup that
// fails the test if new, non-benign goroutines are still running when the
// test ends. Shut-down races are absorbed by polling: a goroutine only
// counts as leaked if it survives the full grace window.
//
// Usage, first line of a lifecycle test:
//
//	defer servertest.VerifyNone(t)()
//
// or via t.Cleanup semantics by just calling servertest.VerifyNone(t) and
// invoking the returned func at the end.
func VerifyNone(t testing.TB) func() {
	t.Helper()
	baseline := goroutineIDs()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []goroutineInfo
		for {
			leaked = leakedSince(baseline)
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		for _, g := range leaked {
			t.Errorf("leaked goroutine %d:\n%s", g.id, g.stack)
		}
	}
}

type goroutineInfo struct {
	id    int
	stack string
}

// benignFrames marks goroutines owned by the runtime, the testing harness,
// or long-lived stdlib machinery that is not ours to join.
var benignFrames = []string{
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.tRunner",
	"testing.runTests",
	"testing.runFuzzing",
	"runtime.goexit",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.(*Transport)",
	"net/http.(*Server).Serve", // httptest servers are closed by their own cleanup
	"database/sql.(*DB)",
	"go.opencensus",
	"created by runtime",
}

func leakedSince(baseline map[int]bool) []goroutineInfo {
	var out []goroutineInfo
	self := currentGoroutineID()
	for _, g := range snapshot() {
		if g.id == self || baseline[g.id] || benign(g.stack) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func benign(stack string) bool {
	for _, f := range benignFrames {
		if strings.Contains(stack, f) {
			return true
		}
	}
	return false
}

func goroutineIDs() map[int]bool {
	ids := make(map[int]bool)
	for _, g := range snapshot() {
		ids[g.id] = true
	}
	return ids
}

// snapshot captures all goroutine stacks via runtime.Stack and splits them
// into per-goroutine records. The text format is stable: blocks separated by
// blank lines, each starting "goroutine N [state]:".
func snapshot() []goroutineInfo {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutineInfo
	for _, block := range strings.Split(string(buf), "\n\n") {
		id, ok := parseGoroutineID(block)
		if !ok {
			continue
		}
		out = append(out, goroutineInfo{id: id, stack: block})
	}
	return out
}

func parseGoroutineID(block string) (int, bool) {
	rest, ok := strings.CutPrefix(block, "goroutine ")
	if !ok {
		return 0, false
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, false
	}
	id, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return 0, false
	}
	return id, true
}

func currentGoroutineID() int {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	id, ok := parseGoroutineID(string(buf))
	if !ok {
		panic(fmt.Sprintf("servertest: unparseable stack header %q", buf))
	}
	return id
}
