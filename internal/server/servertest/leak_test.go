package servertest

import (
	"strings"
	"testing"
	"time"
)

// recordingTB captures Errorf calls so VerifyNone's failure path can be
// exercised without failing the real test.
type recordingTB struct {
	testing.TB
	failures []string
}

func (r *recordingTB) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}
func (r *recordingTB) Helper() {}

func TestVerifyNoneCleanPass(t *testing.T) {
	done := make(chan struct{})
	check := VerifyNone(t)
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	<-done
	check() // the goroutine exits within the grace window: no failure
}

func TestVerifyNoneCatchesLeak(t *testing.T) {
	rec := &recordingTB{TB: t}
	check := VerifyNone(rec)
	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }()
	check()
	if len(rec.failures) == 0 {
		t.Fatal("VerifyNone missed a deliberately leaked goroutine")
	}
	if !strings.Contains(rec.failures[0], "leaked goroutine") {
		t.Fatalf("unexpected failure message %q", rec.failures[0])
	}
}
