package server

import (
	"net/http"
	"sort"
	"time"

	"github.com/clamshell/clamshell/internal/journal"
)

// Server-side pool maintenance: the live counterpart of the simulator's
// Maintainer. The server tracks each worker's empirical per-record latency;
// when a worker's mean is significantly above the configured threshold they
// are retired — their next fetch returns 410 Gone and their slot leaves the
// pool (they are not blacklisted, exactly as in the paper).

// WorkerStats is the per-worker view exposed by GET /api/workers.
type WorkerStats struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	Completed   int     `json:"completed"`
	MeanPerRec  float64 `json:"mean_per_record_seconds"`
	Working     bool    `json:"working"`
	JoinedAgoMS int64   `json:"joined_ago_ms"`
}

// observeLatency records a completed assignment's per-record latency for a
// worker and returns it. The caller records the value into the shard's
// latency sketch after releasing mu. Callers hold mu.
func (s *Shard) observeLatency(pw *poolWorker, records int, elapsed time.Duration) float64 {
	if records < 1 {
		records = 1
	}
	perRec := elapsed.Seconds() / float64(records)
	pw.latN++
	pw.latSum += perRec
	return perRec
}

// maintenanceCheck retires the worker if maintenance is enabled and their
// empirical mean is above the threshold with enough evidence. Callers hold
// mu. Returns true if the worker was retired.
//
//clamshell:locked callers hold mu
func (s *Shard) maintenanceCheck(pw *poolWorker) bool {
	if s.cfg.MaintenanceThreshold <= 0 || pw.latN < s.cfg.MaintenanceMinObs {
		return false
	}
	if pw.latSum/float64(pw.latN) <= s.cfg.MaintenanceThreshold.Seconds() {
		return false
	}
	pw.retired = true
	s.retired[pw.id] = true
	s.logOp(journal.Op{T: journal.OpRetire, Worker: pw.id})
	s.removeWorker(pw.id, "retire")
	s.retiredCount++
	return true
}

// handleWorkers reports per-worker statistics in join order.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireWorkers()
	now := s.cfg.Now()
	out := make([]WorkerStats, 0, len(s.workers))
	for _, pw := range s.workers {
		ws := WorkerStats{
			ID:          pw.id,
			Name:        pw.name,
			Completed:   pw.done,
			Working:     pw.current != 0,
			JoinedAgoMS: now.Sub(pw.joinedAt).Milliseconds(),
		}
		if pw.latN > 0 {
			ws.MeanPerRec = pw.latSum / float64(pw.latN)
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}
