package server

import (
	"fmt"
	"sort"
	"strings"

	"github.com/clamshell/clamshell/internal/sketch"
)

// The shared Prometheus exposition renderer. The standalone Server and the
// fabric router both build a MetricsPage — per-shard state merged via the
// t-digest sketches — and render it here, so the two scrape surfaces
// (/metrics and the back-compat /api/metricsz alias) cannot drift and a
// 1-shard fabric's page is byte-identical to the single server's by
// construction. Every family's HELP/TYPE header is emitted exactly once.

// summaryQs is the quantile set every latency summary exposes.
var summaryQs = []float64{0.5, 0.95, 0.99}

// BacklogDepth is one priority bucket's pending-task depth.
type BacklogDepth struct {
	Priority int
	Depth    int
}

// JournalSnapshot is the durability plane's contribution to the page
// (present only when a journal engine is attached).
type JournalSnapshot struct {
	CommitLag       *sketch.TDigest // seconds from first buffered op to fsync
	BatchOps        *sketch.TDigest // ops per group-commit batch
	DirtyAgeSeconds float64         // age of the oldest un-synced op right now
	RetainedRecords uint64          // records in the retained tally logs
}

// ReplSnapshot is the replication plane's contribution to the page
// (present only on a primary with journal shipping configured).
type ReplSnapshot struct {
	FollowerAttached bool    // a follower has pulled at least once
	LagMS            float64 // ms since the follower last matched the durable frontier
	LagBytes         float64 // durable bytes the follower has not yet acknowledged
	ShippedBytes     uint64  // total journal bytes shipped to followers
	SyncDegraded     uint64  // mutating acks released by barrier timeout, not follower durability
}

// ShardMetrics is one shard's contribution to the fabric-wide page.
type ShardMetrics struct {
	Counters    Counters
	CostDollars float64
	PerRecord   *sketch.TDigest
	Handout     *sketch.TDigest
	Backlog     []BacklogDepth
}

// HybridSnapshot is the hybrid learning plane's contribution to the page
// (present only when the plane is attached). Counts come from the plane's
// event stream; Accuracy is the shadow retrainer's moving agreement with
// human consensus, meaningful only once AccuracyKnown.
type HybridSnapshot struct {
	HumanLabels   uint64  // tasks finalized by human quorum
	ModelLabels   uint64  // tasks finalized by the model
	Reprioritized uint64  // pending tasks re-bucketed by uncertainty
	Pending       int     // feature-carrying tasks awaiting a decision
	Accuracy      float64 // shadow model agreement with human consensus
	AccuracyKnown bool
}

// MetricsPage is everything a scrape renders: merged shard state plus the
// transport observation plane and the optional journal snapshot.
type MetricsPage struct {
	Counters    Counters
	CostDollars float64
	PerRecord   *sketch.TDigest
	Handout     *sketch.TDigest
	Backlog     []BacklogDepth
	Obs         *Obs
	Journal     *JournalSnapshot
	Hybrid      *HybridSnapshot
	Repl        *ReplSnapshot
}

// BuildMetricsPage merges per-shard metrics into one fabric-wide page:
// counters sum, sketches merge (the whole point of the t-digest plane),
// backlog depths sum per priority.
func BuildMetricsPage(shards []ShardMetrics, obs *Obs, j *JournalSnapshot) *MetricsPage {
	p := &MetricsPage{
		PerRecord: sketch.New(sketch.DefaultCompression),
		Handout:   sketch.New(sketch.DefaultCompression),
		Obs:       obs,
		Journal:   j,
	}
	depth := map[int]int{}
	for _, sm := range shards {
		c := sm.Counters
		p.Counters.Tasks += c.Tasks
		p.Counters.Complete += c.Complete
		p.Counters.Workers += c.Workers
		p.Counters.Idle += c.Idle
		p.Counters.Terminated += c.Terminated
		p.Counters.Retired += c.Retired
		p.Counters.Expired += c.Expired
		p.Counters.TalliesAged += c.TalliesAged
		p.Counters.AutoFinalized += c.AutoFinalized
		p.CostDollars += sm.CostDollars
		p.PerRecord.Merge(sm.PerRecord)
		p.Handout.Merge(sm.Handout)
		for _, b := range sm.Backlog {
			depth[b.Priority] += b.Depth
		}
	}
	prios := make([]int, 0, len(depth))
	for prio := range depth {
		prios = append(prios, prio)
	}
	sort.Ints(prios)
	for _, prio := range prios {
		p.Backlog = append(p.Backlog, BacklogDepth{Priority: prio, Depth: depth[prio]})
	}
	return p
}

// RenderPrometheus renders the page in the text exposition format (0.0.4).
func (p *MetricsPage) RenderPrometheus() []byte {
	var b strings.Builder
	header := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	gauge := func(name, help string, v float64) {
		header(name, help, "gauge")
		fmt.Fprintf(&b, "%s %g\n", name, v)
	}
	// summarySeries emits one summary's sample lines; labels is the
	// rendered label set without quantile (empty for an unlabeled family).
	summarySeries := func(name, labels string, d *sketch.TDigest) {
		sep := ""
		if labels != "" {
			sep = ","
		}
		for _, q := range summaryQs {
			fmt.Fprintf(&b, "%s{%s%squantile=%q} %g\n", name, labels, sep, fmt.Sprintf("%g", q), d.Quantile(q))
		}
		var suffix string
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %g\n", name, suffix, d.Sum())
		fmt.Fprintf(&b, "%s_count%s %d\n", name, suffix, d.Count())
	}

	c := p.Counters
	gauge("clamshell_tasks_total", "Tasks submitted.", float64(c.Tasks))
	gauge("clamshell_tasks_complete", "Tasks with a full quorum of answers.", float64(c.Complete))
	gauge("clamshell_workers", "Workers currently in the retainer pool.", float64(c.Workers))
	gauge("clamshell_workers_idle", "Pool workers waiting for work.", float64(c.Idle))
	gauge("clamshell_terminated_total", "Straggler submissions discarded (still paid).", float64(c.Terminated))
	gauge("clamshell_retired_total", "Workers retired by pool maintenance.", float64(c.Retired))
	gauge("clamshell_cost_total_dollars", "Total spend.", p.CostDollars)

	header("clamshell_latency_per_record_seconds",
		"Fabric-wide per-record round-trip latency (merged t-digest).", "summary")
	summarySeries("clamshell_latency_per_record_seconds", "", p.PerRecord)

	header("clamshell_handout_wait_seconds",
		"Time tasks wait in the dispatch index before hand-out (merged t-digest).", "summary")
	summarySeries("clamshell_handout_wait_seconds", "", p.Handout)

	header("clamshell_backlog_depth", "Pending tasks per priority bucket.", "gauge")
	for _, d := range p.Backlog {
		fmt.Fprintf(&b, "clamshell_backlog_depth{priority=\"%d\"} %d\n", d.Priority, d.Depth)
	}

	header("clamshell_expired_workers_total", "Workers expired for missing heartbeats.", "counter")
	fmt.Fprintf(&b, "clamshell_expired_workers_total %d\n", c.Expired)
	header("clamshell_tallies_aged_total",
		"Retained vote tallies aged into count-only aggregates.", "counter")
	fmt.Fprintf(&b, "clamshell_tallies_aged_total %d\n", c.TalliesAged)
	header("clamshell_hybrid_autofinalized_total",
		"Tasks finalized by the hybrid plane's model instead of a human quorum.", "counter")
	fmt.Fprintf(&b, "clamshell_hybrid_autofinalized_total %d\n", c.AutoFinalized)

	if h := p.Hybrid; h != nil {
		header("clamshell_hybrid_labels_total",
			"Finalized tasks by label source (human quorum vs model).", "counter")
		fmt.Fprintf(&b, "clamshell_hybrid_labels_total{source=\"human\"} %d\n", h.HumanLabels)
		fmt.Fprintf(&b, "clamshell_hybrid_labels_total{source=\"model\"} %d\n", h.ModelLabels)
		header("clamshell_hybrid_reprioritized_total",
			"Pending tasks re-bucketed by model uncertainty.", "counter")
		fmt.Fprintf(&b, "clamshell_hybrid_reprioritized_total %d\n", h.Reprioritized)
		gauge("clamshell_hybrid_pending_candidates",
			"Feature-carrying pending tasks awaiting a model decision.", float64(h.Pending))
		if h.AccuracyKnown {
			gauge("clamshell_hybrid_model_accuracy",
				"Shadow model agreement with human consensus (moving rate).", h.Accuracy)
		}
	}

	if o := p.Obs; o != nil {
		header("clamshell_steals_total", "Tasks handed out across shards by work stealing.", "counter")
		fmt.Fprintf(&b, "clamshell_steals_total %d\n", o.Steals.Load())

		transports := []struct {
			name string
			ts   *TransportStats
		}{{"http", &o.HTTP}, {"wire", &o.Wire}}

		header("clamshell_ops_total", "Core operations served, by transport and op.", "counter")
		for _, tr := range transports {
			for op := Op(0); op < NumOps; op++ {
				if n := tr.ts.Count(op); n > 0 {
					fmt.Fprintf(&b, "clamshell_ops_total{transport=%q,op=%q} %d\n", tr.name, op, n)
				}
			}
		}

		header("clamshell_op_latency_seconds",
			"Server-side service time per core operation (merged t-digest).", "summary")
		for _, tr := range transports {
			for op := Op(0); op < NumOps; op++ {
				if tr.ts.Count(op) == 0 {
					continue
				}
				labels := fmt.Sprintf("transport=%q,op=%q", tr.name, op)
				summarySeries("clamshell_op_latency_seconds", labels, tr.ts.Snapshot(op))
			}
		}

		header("clamshell_wire_decode_seconds",
			"Wire-protocol frame decode time (merged t-digest).", "summary")
		summarySeries("clamshell_wire_decode_seconds", "", o.WireDecode.Snapshot())

		if conns := o.ConnSnapshot(); len(conns) > 0 {
			header("clamshell_wire_conn_ops_total",
				"Wire ops served per connection, by remote address.", "counter")
			for _, cc := range conns {
				fmt.Fprintf(&b, "clamshell_wire_conn_ops_total{remote=%q} %d\n", cc.Remote, cc.Ops)
			}
			header("clamshell_wire_conn_decode_errors_total",
				"Wire frames rejected by the strict decoder, per connection.", "counter")
			for _, cc := range conns {
				fmt.Fprintf(&b, "clamshell_wire_conn_decode_errors_total{remote=%q} %d\n", cc.Remote, cc.DecodeErrors)
			}
			header("clamshell_wire_throttled_total",
				"Wire ops refused by the per-connection rate limit, per remote.", "counter")
			for _, cc := range conns {
				fmt.Fprintf(&b, "clamshell_wire_throttled_total{remote=%q} %d\n", cc.Remote, cc.Throttled)
			}
		}
	}

	if j := p.Journal; j != nil {
		header("clamshell_journal_commit_lag_seconds",
			"Time from first buffered op to its durable fsync (merged t-digest).", "summary")
		summarySeries("clamshell_journal_commit_lag_seconds", "", j.CommitLag)
		header("clamshell_journal_batch_ops",
			"Ops made durable per group-commit batch (merged t-digest).", "summary")
		summarySeries("clamshell_journal_batch_ops", "", j.BatchOps)
		gauge("clamshell_journal_dirty_age_seconds",
			"Age of the oldest journaled op not yet fsynced.", j.DirtyAgeSeconds)
		gauge("clamshell_journal_retained_records",
			"Records in the retained tally logs (compaction bound trigger).", float64(j.RetainedRecords))
	}

	if rp := p.Repl; rp != nil {
		attached := 0.0
		if rp.FollowerAttached {
			attached = 1
		}
		gauge("clamshell_repl_follower_attached",
			"Whether a journal-shipping follower is currently attached.", attached)
		gauge("clamshell_repl_lag_ms",
			"Milliseconds since the follower last matched the primary's durable frontier.", rp.LagMS)
		gauge("clamshell_repl_lag_bytes",
			"Durable journal bytes not yet acknowledged by the follower.", rp.LagBytes)
		header("clamshell_repl_shipped_bytes_total",
			"Journal bytes shipped to followers.", "counter")
		fmt.Fprintf(&b, "clamshell_repl_shipped_bytes_total %d\n", rp.ShippedBytes)
		header("clamshell_repl_sync_degraded_total",
			"Mutating acks released by barrier timeout instead of follower durability.", "counter")
		fmt.Fprintf(&b, "clamshell_repl_sync_degraded_total %d\n", rp.SyncDegraded)
	}

	return []byte(b.String())
}

// FollowerMetrics is the journal-shipping follower's scrape surface. The
// attachment and lag families mirror the primary's page (the same series
// seen from the other end of the link); the pull counters are follower-only.
type FollowerMetrics struct {
	Attached    bool    // at least one pull has succeeded
	LagMS       float64 // ms since the last completed pull
	LagBytes    float64 // primary-reported durable bytes not yet mirrored
	PulledBytes uint64  // journal payload bytes mirrored so far
	Bootstraps  uint64  // full re-seeds from a primary snapshot
}

// Render appends the follower families to a metrics page under build.
func (fm FollowerMetrics) Render(b *strings.Builder) {
	header := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	attached := 0
	if fm.Attached {
		attached = 1
	}
	fmt.Fprintf(b, "clamshell_repl_follower_attached %d\n", attached)
	fmt.Fprintf(b, "clamshell_repl_lag_ms %g\n", fm.LagMS)
	fmt.Fprintf(b, "clamshell_repl_lag_bytes %g\n", fm.LagBytes)
	header("clamshell_repl_pulled_bytes_total",
		"Journal bytes pulled from the primary into the local mirror.", "counter")
	fmt.Fprintf(b, "clamshell_repl_pulled_bytes_total %d\n", fm.PulledBytes)
	header("clamshell_repl_bootstraps_total",
		"Full mirror re-seeds from a primary snapshot (initial attach, rotation, reset).", "counter")
	fmt.Fprintf(b, "clamshell_repl_bootstraps_total %d\n", fm.Bootstraps)
}
