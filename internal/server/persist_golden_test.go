package server

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/clamshell/clamshell/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenState is a fixed version-1 snapshot exercising every field,
// including the additive ones (done_at, retained).
func goldenState() SnapshotState {
	return SnapshotState{
		Version:      SnapshotVersion,
		NextTask:     5,
		NextWorker:   3,
		Terminated:   1,
		RetiredCount: 1,
		Retired:      []int{2},
		Costs: metrics.Accounting{
			WaitPay: 12_500, WorkPay: 80_000, TerminatedPay: 20_000,
		},
		Order: []int{1, 3, 5},
		Tasks: []TaskState{
			{
				ID:      3,
				Spec:    TaskSpec{Records: []string{"a", "b"}, Classes: 2, Quorum: 2, Priority: 1},
				Answers: [][]int{{0, 1}},
				Voters:  []int{1},
			},
			{
				ID:      5,
				Spec:    TaskSpec{Records: []string{"c"}, Classes: 3, Quorum: 1},
				Answers: [][]int{{2}},
				Voters:  []int{3},
				Done:    true,
				DoneAt:  1442750400000000000,
			},
		},
		Retained: []RetainedTask{
			{
				ID: 1, Records: 2, Classes: 2,
				Answers: [][]int{{1, 0}, {1, 1}},
				Voters:  []int{1, 2},
				DoneAt:  1442750000000000000,
			},
		},
	}
}

// TestGoldenSnapshot pins the snapshot wire format: the checked-in fixture
// must decode to exactly the golden state forever, and re-encoding must
// reproduce it byte for byte. A failure here means the format changed out
// from under deployed snapshots — bump SnapshotVersion instead.
func TestGoldenSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "snapshot_v1.golden.json")
	want, err := EncodeSnapshot(goldenState())
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot golden drifted from the current encoding:\n got: %s\nwant: %s", got, want)
	}
	st, err := DecodeSnapshot(got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, goldenState()) {
		t.Fatalf("golden snapshot decoded to %+v", st)
	}

	// The golden state must survive an import/export round trip intact.
	s := NewShard(Config{Now: func() time.Time { return time.Unix(0, 1442751000000000000) }}, 0, 1)
	s.ImportState(st)
	again, err := EncodeSnapshot(s.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatalf("import/export round trip drifted:\n got: %s\nwant: %s", again, want)
	}
}

// Unknown snapshot versions must be rejected with a clear error instead of
// silently misread.
func TestUnknownSnapshotVersionRejected(t *testing.T) {
	data, _ := EncodeSnapshot(goldenState())
	bad := bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if bytes.Equal(bad, data) {
		t.Fatal("fixture surgery failed")
	}
	_, err := DecodeSnapshot(bad)
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version-99 snapshot: err = %v, want a clear version error", err)
	}
}

// A legacy version-1 snapshot written before the additive fields existed
// (no done_at, no retained) must still decode and import.
func TestLegacySnapshotStillLoads(t *testing.T) {
	legacy := []byte(`{
  "version": 1,
  "next_task": 2,
  "next_worker": 1,
  "terminated": 0,
  "retired_count": 0,
  "costs": {"WaitPay": 0, "WorkPay": 20000, "TerminatedPay": 0, "RecruitmentPay": 0},
  "order": [1, 2],
  "tasks": [
    {"id": 1, "spec": {"records": ["x"], "classes": 2, "quorum": 1}, "answers": [[1]], "voters": [7], "done": true},
    {"id": 2, "spec": {"records": ["y"], "classes": 2, "quorum": 1}, "done": false}
  ]
}`)
	st, err := DecodeSnapshot(legacy)
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	s := NewShard(Config{Now: func() time.Time { return now }}, 0, 1)
	s.ImportState(st)
	out := s.ExportState()
	if len(out.Tasks) != 2 || !out.Tasks[0].Done {
		t.Fatalf("legacy import lost tasks: %+v", out.Tasks)
	}
	// A done task without a completion time ages from import, so retention
	// does not immediately demote history of unknown age.
	if out.Tasks[0].DoneAt != now.UnixNano() {
		t.Fatalf("legacy done task aged from %d, want import time %d", out.Tasks[0].DoneAt, now.UnixNano())
	}
}

// FuzzDecodeSnapshot: arbitrary snapshot bytes must never panic the
// decoder, and anything the validator accepts must import and re-export
// cleanly (the fabric relies on validated states importing atomically).
func FuzzDecodeSnapshot(f *testing.F) {
	golden, _ := EncodeSnapshot(goldenState())
	f.Add(golden)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`{"version": 1, "order": [7]}`))
	f.Add([]byte(`{"version": 1, "tasks": [{"id": -4, "spec": {"records": ["x"]}}]}`))
	f.Add([]byte(`{"version": 1, "retained": [{"id": 1, "records": 1, "answers": [[0, 0]], "voters": [1]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		s := NewShard(Config{Now: func() time.Time { return time.Unix(1, 0) }}, 0, 1)
		s.ImportState(st)
		if _, err := EncodeSnapshot(s.ExportState()); err != nil {
			t.Fatalf("validated state failed to re-export: %v", err)
		}
	})
}
