package server

import (
	"strings"
	"testing"
	"time"

	"github.com/clamshell/clamshell/internal/journal"
)

// Tally aging is the second demotion tier: a retained tally older than
// Config.TallyHorizon is frozen to a count-only aggregate (consensus labels
// and answer count survive; the per-worker vote matrix is dropped), which
// bounds retained-log growth on long-lived deployments. The aged record
// must keep answering /api/result, bump the aged counter on the scrape
// surface, and survive a journal recovery round trip.
func TestTallyAging(t *testing.T) {
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	dir := t.TempDir()
	s, c := startServer(t, Config{Now: clock, WorkerTimeout: time.Hour, TallyHorizon: 2 * time.Hour})
	st, rec, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecoverFrom(st, rec); err != nil {
		t.Fatal(err)
	}

	wid, _ := c.Join("w")
	ids, _ := c.SubmitTasks([]TaskSpec{
		{Records: []string{"a", "b"}, Classes: 2, Quorum: 1},
	})
	if _, ok, _ := c.FetchTask(wid); !ok {
		t.Fatal("no assignment")
	}
	if acc, _, _ := c.Submit(wid, ids[0], []int{1, 0}); !acc {
		t.Fatal("submit rejected")
	}

	// Past retention but inside the horizon: demoted to a full tally.
	now = now.Add(time.Hour)
	if err := s.CompactInto(st, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	tal := s.tallies[ids[0]]
	s.mu.Unlock()
	if tal == nil {
		t.Fatal("task not demoted to a tally")
	}
	if tal.Aged || len(tal.Answers) == 0 {
		t.Fatalf("tally aged prematurely: %+v", tal)
	}

	// Cross the horizon: the next compaction ages it.
	now = now.Add(3 * time.Hour)
	if err := s.CompactInto(st, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	tal = s.tallies[ids[0]]
	aged := s.talliesAged
	s.mu.Unlock()
	if !tal.Aged || tal.Answers != nil || tal.Voters != nil {
		t.Fatalf("tally not aged to a count-only aggregate: %+v", tal)
	}
	if tal.AnswerCount != 1 || len(tal.Consensus) != 2 || tal.Consensus[0] != 1 || tal.Consensus[1] != 0 {
		t.Fatalf("aged tally lost its aggregate: %+v", tal)
	}
	if aged != 1 {
		t.Fatalf("talliesAged = %d, want 1", aged)
	}

	// The aged task still answers with its frozen consensus.
	res, err := c.Result(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.State != "complete" || res.Answers != 1 ||
		len(res.Consensus) != 2 || res.Consensus[0] != 1 || res.Consensus[1] != 0 {
		t.Fatalf("aged result = %+v, want complete with consensus [1 0]", res)
	}

	// The scrape surface counts the aging.
	page, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "clamshell_tallies_aged_total 1") {
		t.Fatalf("metrics missing aged counter:\n%s", page)
	}

	// Recovery round trip: the aged record (appended over the original by
	// last-wins overlay) must come back aged, still answering.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, c2 := startServer(t, Config{Now: clock, TallyHorizon: 2 * time.Hour})
	if err := s2.RecoverFrom(st2, rec2); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Result(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if res2.State != "complete" || res2.Answers != 1 || len(res2.Consensus) != 2 {
		t.Fatalf("recovered aged result = %+v", res2)
	}
	s2.mu.Lock()
	tal2 := s2.tallies[ids[0]]
	s2.mu.Unlock()
	if tal2 == nil || !tal2.Aged {
		t.Fatalf("recovered tally not aged: %+v", tal2)
	}
}
