package server

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Client, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), ts
}

func TestJoinFetchSubmitRoundTrip(t *testing.T) {
	c, _ := newTestServer(t, Config{})
	wid, err := c.Join("alice")
	if err != nil {
		t.Fatal(err)
	}
	if wid == 0 {
		t.Fatal("zero worker id")
	}
	// No tasks yet.
	if _, ok, err := c.FetchTask(wid); err != nil || ok {
		t.Fatalf("fetch before tasks: ok=%v err=%v", ok, err)
	}
	ids, err := c.SubmitTasks([]TaskSpec{
		{Records: []string{"tweet one", "tweet two"}, Classes: 3, Quorum: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	a, ok, err := c.FetchTask(wid)
	if err != nil || !ok {
		t.Fatalf("fetch: ok=%v err=%v", ok, err)
	}
	if a.TaskID != ids[0] || len(a.Records) != 2 || a.Classes != 3 {
		t.Fatalf("assignment = %+v", a)
	}
	accepted, terminated, err := c.Submit(wid, a.TaskID, []int{0, 2})
	if err != nil || !accepted || terminated {
		t.Fatalf("submit: accepted=%v terminated=%v err=%v", accepted, terminated, err)
	}
	st, err := c.Result(a.TaskID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "complete" {
		t.Fatalf("state = %s", st.State)
	}
	if st.Consensus[0] != 0 || st.Consensus[1] != 2 {
		t.Fatalf("consensus = %v", st.Consensus)
	}
}

func TestRefetchRedeliversAssignment(t *testing.T) {
	c, _ := newTestServer(t, Config{})
	wid, _ := c.Join("w")
	c.SubmitTasks([]TaskSpec{{Records: []string{"r"}, Classes: 2}})
	a1, ok, _ := c.FetchTask(wid)
	if !ok {
		t.Fatal("no assignment")
	}
	a2, ok, _ := c.FetchTask(wid)
	if !ok || a2.TaskID != a1.TaskID {
		t.Fatalf("refetch returned %+v, want redelivery of %d", a2, a1.TaskID)
	}
}

func TestQuorumConsensus(t *testing.T) {
	c, _ := newTestServer(t, Config{})
	ids, _ := c.SubmitTasks([]TaskSpec{{Records: []string{"x"}, Classes: 2, Quorum: 3}})
	votes := []int{1, 1, 0}
	for i, v := range votes {
		wid, _ := c.Join("w")
		a, ok, err := c.FetchTask(wid)
		if err != nil || !ok {
			t.Fatalf("vote %d: fetch failed", i)
		}
		accepted, terminated, err := c.Submit(wid, a.TaskID, []int{v})
		if err != nil || !accepted || terminated {
			t.Fatalf("vote %d rejected", i)
		}
	}
	st, _ := c.Result(ids[0])
	if st.State != "complete" || st.Answers != 3 {
		t.Fatalf("status = %+v", st)
	}
	if st.Consensus[0] != 1 {
		t.Fatalf("consensus = %v, want majority 1", st.Consensus)
	}
}

func TestStragglerDuplicationAndTermination(t *testing.T) {
	c, _ := newTestServer(t, Config{SpeculationLimit: 1})
	ids, _ := c.SubmitTasks([]TaskSpec{{Records: []string{"x"}, Classes: 2}})

	slow, _ := c.Join("slow")
	fast, _ := c.Join("fast")
	// Slow worker takes the task...
	if _, ok, _ := c.FetchTask(slow); !ok {
		t.Fatal("slow got no task")
	}
	// ...fast worker gets a speculative duplicate of the same task.
	a, ok, _ := c.FetchTask(fast)
	if !ok || a.TaskID != ids[0] {
		t.Fatalf("fast got %+v, want duplicate of task %d", a, ids[0])
	}
	// Fast answers first and wins.
	if accepted, _, _ := c.Submit(fast, ids[0], []int{1}); !accepted {
		t.Fatal("fast answer rejected")
	}
	// Slow answers late: acknowledged but terminated.
	accepted, terminated, err := c.Submit(slow, ids[0], []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if accepted || !terminated {
		t.Fatalf("late submit: accepted=%v terminated=%v", accepted, terminated)
	}
	st, _ := c.Result(ids[0])
	if st.Consensus[0] != 1 {
		t.Fatalf("consensus = %v, want the winner's label", st.Consensus)
	}
	status, _ := c.Status()
	if status["terminated"] != 1 {
		t.Fatalf("terminated counter = %d", status["terminated"])
	}
}

func TestSpeculationLimitRespected(t *testing.T) {
	c, _ := newTestServer(t, Config{SpeculationLimit: 1})
	c.SubmitTasks([]TaskSpec{{Records: []string{"x"}, Classes: 2}})
	w1, _ := c.Join("w1")
	w2, _ := c.Join("w2")
	w3, _ := c.Join("w3")
	if _, ok, _ := c.FetchTask(w1); !ok {
		t.Fatal("w1 idle")
	}
	if _, ok, _ := c.FetchTask(w2); !ok {
		t.Fatal("w2 should get the speculative duplicate")
	}
	// Cap reached (needed 1 + limit 1 = 2 active): w3 waits.
	if _, ok, _ := c.FetchTask(w3); ok {
		t.Fatal("w3 should be told to wait")
	}
}

func TestWorkerNeverDuplicatesOwnTask(t *testing.T) {
	c, _ := newTestServer(t, Config{})
	c.SubmitTasks([]TaskSpec{{Records: []string{"x"}, Classes: 2, Quorum: 2}})
	wid, _ := c.Join("w")
	a, ok, _ := c.FetchTask(wid)
	if !ok {
		t.Fatal("no task")
	}
	c.Submit(wid, a.TaskID, []int{0})
	// The task still needs one answer, but not from the same worker.
	if _, ok, _ := c.FetchTask(wid); ok {
		t.Fatal("worker offered a task it already answered")
	}
}

func TestWorkerExpiry(t *testing.T) {
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	c, _ := newTestServer(t, Config{WorkerTimeout: time.Minute, Now: clock})
	c.SubmitTasks([]TaskSpec{{Records: []string{"x"}, Classes: 2}})
	w1, _ := c.Join("ghost")
	if _, ok, _ := c.FetchTask(w1); !ok {
		t.Fatal("no task")
	}
	// Ghost vanishes; 2 minutes pass.
	now = now.Add(2 * time.Minute)
	w2, _ := c.Join("live")
	a, ok, _ := c.FetchTask(w2)
	if !ok {
		t.Fatal("task not requeued after worker expiry")
	}
	if accepted, _, _ := c.Submit(w2, a.TaskID, []int{1}); !accepted {
		t.Fatal("requeued submit rejected")
	}
}

func TestValidationErrors(t *testing.T) {
	c, _ := newTestServer(t, Config{})
	if _, err := c.SubmitTasks(nil); err == nil {
		t.Fatal("empty task list accepted")
	}
	if _, err := c.SubmitTasks([]TaskSpec{{Records: nil}}); err == nil {
		t.Fatal("recordless task accepted")
	}
	if err := c.Heartbeat(999); err == nil {
		t.Fatal("heartbeat for unknown worker accepted")
	}
	wid, _ := c.Join("w")
	ids, _ := c.SubmitTasks([]TaskSpec{{Records: []string{"a", "b"}, Classes: 2}})
	c.FetchTask(wid)
	if _, _, err := c.Submit(wid, ids[0], []int{1}); err == nil {
		t.Fatal("wrong label count accepted")
	}
	if _, _, err := c.Submit(wid, ids[0], []int{1, 5}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, _, err := c.Submit(999, ids[0], []int{1, 0}); err == nil {
		t.Fatal("unknown worker submit accepted")
	}
	if _, _, err := c.Submit(wid, 999, []int{1, 0}); err == nil {
		t.Fatal("unknown task submit accepted")
	}
	if _, err := c.Result(999); err == nil {
		t.Fatal("unknown task result accepted")
	}
}

// TestSwarmIntegration drives a pool of concurrent worker goroutines against
// a batch of quorum tasks and checks that everything completes with sane
// consensus — the server-side analogue of the simulator's end-to-end runs.
func TestSwarmIntegration(t *testing.T) {
	c, _ := newTestServer(t, Config{SpeculationLimit: 1})
	const tasks, workers = 40, 8
	specs := make([]TaskSpec, tasks)
	for i := range specs {
		specs[i] = TaskSpec{Records: []string{"r1", "r2"}, Classes: 2, Quorum: 2}
	}
	ids, err := c.SubmitTasks(specs)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			wc := NewClient(c.BaseURL)
			wid, err := wc.Join("swarm")
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, ok, err := wc.FetchTask(wid)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					time.Sleep(time.Millisecond)
					continue
				}
				labels := make([]int, len(a.Records))
				for i := range labels {
					labels[i] = (n + i) % 2
				}
				if _, _, err := wc.Submit(wid, a.TaskID, labels); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	deadline := time.After(10 * time.Second)
	for {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st["complete"] == tasks {
			break
		}
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Fatalf("only %d/%d tasks complete", st["complete"], tasks)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	for _, id := range ids {
		st, err := c.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "complete" || len(st.Consensus) != 2 {
			t.Fatalf("task %d: %+v", id, st)
		}
		for _, l := range st.Consensus {
			if l < 0 || l > 1 {
				t.Fatalf("task %d consensus out of range: %v", id, st.Consensus)
			}
		}
	}
}
