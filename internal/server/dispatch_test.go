package server

import (
	"math/rand"
	"testing"
	"time"
)

// naiveCandidates is the pre-index linear scan over the full submission
// order — the executable specification the dispatch index must match:
// highest priority first, FIFO within a priority, skipping tasks the worker
// is assigned or has answered, partitioned into starved vs speculative
// exactly as dispatchStateOf classifies them. Callers hold mu.
func naiveCandidates(s *Shard, workerID int) (starved, speculative *workUnit) {
	for _, tid := range s.order {
		u := s.tasks[tid]
		if u.done || u.active[workerID] || s.answered(u, workerID) {
			continue
		}
		switch {
		case len(u.active) < u.needed():
			if starved == nil || u.spec.Priority > starved.spec.Priority {
				starved = u
			}
		case len(u.active) > 0 && len(u.active) < u.needed()+s.cfg.SpeculationLimit:
			if speculative == nil || u.spec.Priority > speculative.spec.Priority {
				speculative = u
			}
		}
	}
	return starved, speculative
}

func unitID(u *workUnit) int {
	if u == nil {
		return 0
	}
	return u.id
}

// checkDispatchMatchesNaive cross-checks the indexed pick against the naive
// scan for every joined worker, in both partitions.
func checkDispatchMatchesNaive(t *testing.T, s *Shard, step int) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for wid := range s.workers {
		wantS, wantSp := naiveCandidates(s, wid)
		gotS := s.pickPart(dispatchStarved, wid)
		gotSp := s.pickPart(dispatchSpeculative, wid)
		if unitID(gotS) != unitID(wantS) {
			t.Fatalf("step %d worker %d: starved pick %d, naive scan %d",
				step, wid, unitID(gotS), unitID(wantS))
		}
		if unitID(gotSp) != unitID(wantSp) {
			t.Fatalf("step %d worker %d: speculative pick %d, naive scan %d",
				step, wid, unitID(gotSp), unitID(wantSp))
		}
	}
}

// TestDispatchIndexMatchesNaiveScan drives a shard through randomized
// enqueue/assign/steal/submit/replay/leave/expire/restore sequences and
// asserts after every operation that the indexed dispatch structure hands
// out exactly the task the historical linear scan would have.
func TestDispatchIndexMatchesNaiveScan(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
		cfg := Config{
			SpeculationLimit: 1 + rng.Intn(2),
			WorkerTimeout:    30 * time.Second,
			Now:              func() time.Time { return now },
		}
		s := NewShard(cfg, 0, 1)
		var workers []int
		join := func() {
			workers = append(workers, s.Join("w"))
		}
		randWorker := func() int {
			if len(workers) == 0 {
				return 0
			}
			return workers[rng.Intn(len(workers))]
		}
		dropWorker := func(id int) {
			for i, w := range workers {
				if w == id {
					workers = append(workers[:i], workers[i+1:]...)
					return
				}
			}
		}
		join()
		join()

		for step := 0; step < 300; step++ {
			now = now.Add(time.Duration(rng.Intn(3)) * time.Second)
			switch rng.Intn(10) {
			case 0, 1:
				s.Enqueue(TaskSpec{
					Records:  []string{"r"},
					Classes:  2,
					Quorum:   1 + rng.Intn(2),
					Priority: rng.Intn(3),
				})
			case 2:
				join()
			case 3, 4:
				s.PickLocal(randWorker(), rng.Intn(2) == 0)
			case 5:
				// A steal: active is marked on this shard, the assignment
				// recorded (or rolled back) on the "home" shard — here the
				// same shard plays both roles, matching the fabric protocol.
				w := randWorker()
				if tid, _, ok := s.PickSteal(w, rng.Intn(2) == 0); ok {
					if !s.AssignStolen(w, tid) {
						s.ReleaseActive(tid, w)
					}
				}
			case 6:
				// Submit the worker's in-flight assignment; sometimes replay
				// it, which must change nothing.
				w := randWorker()
				s.mu.Lock()
				pw := s.workers[w]
				var tid, records int
				if pw != nil && pw.current != 0 {
					tid = pw.current
					records = len(s.tasks[tid].spec.Records)
				}
				s.mu.Unlock()
				if tid != 0 {
					labels := make([]int, records)
					if outcome, rec, _ := s.AcceptAnswer(tid, w, labels); outcome == SubmitAccepted || outcome == SubmitTerminated {
						s.FinishAssignment(w, tid, rec)
					}
					if rng.Intn(2) == 0 {
						if outcome, _, _ := s.AcceptAnswer(tid, w, labels); outcome != SubmitDuplicate && outcome != SubmitDuplicateTerminated {
							t.Fatalf("trial %d step %d: replayed submit outcome %v", trial, step, outcome)
						}
					}
				}
			case 7:
				w := randWorker()
				s.Leave(w)
				dropWorker(w)
			case 8:
				// Stale workers expire on the next maintenance pass.
				now = now.Add(time.Duration(rng.Intn(40)) * time.Second)
				s.CountersNow()
				s.mu.Lock()
				kept := workers[:0]
				for _, w := range workers {
					if _, ok := s.workers[w]; ok {
						kept = append(kept, w)
					}
				}
				workers = kept
				s.mu.Unlock()
			case 9:
				// Snapshot round trip: the rebuilt index must serve the same
				// order. Workers drop with the restore.
				s.ImportState(s.ExportState())
				workers = workers[:0]
				join()
				join()
			}
			checkDispatchMatchesNaive(t, s, step)
		}
	}
}

// A replayed POST /api/submit (client retry after a lost 200) must be
// re-acknowledged with the original response and change nothing: no second
// vote toward the quorum, no second payment, no inflated completion stats.
func TestSubmitReplayIdempotent(t *testing.T) {
	now := time.Date(2015, 9, 20, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	c, _ := newTestServer(t, Config{Now: clock})
	ids, _ := c.SubmitTasks([]TaskSpec{{Records: []string{"a", "b"}, Classes: 2, Quorum: 2}})
	w1, _ := c.Join("first")
	w2, _ := c.Join("second")

	if _, ok, _ := c.FetchTask(w1); !ok {
		t.Fatal("w1 got no task")
	}
	if acc, _, err := c.Submit(w1, ids[0], []int{0, 1}); err != nil || !acc {
		t.Fatalf("first submit: accepted=%v err=%v", acc, err)
	}
	base := fetchCosts(t, c)

	// Replay before completion: same acknowledgement, nothing recounted.
	acc, term, err := c.Submit(w1, ids[0], []int{0, 1})
	if err != nil || !acc || term {
		t.Fatalf("replay: accepted=%v terminated=%v err=%v", acc, term, err)
	}
	if st, _ := c.Result(ids[0]); st.Answers != 1 {
		t.Fatalf("answers after replay = %d, want 1 (no double vote)", st.Answers)
	}
	if costs := fetchCosts(t, c); costs["work_pay_dollars"] != base["work_pay_dollars"] {
		t.Fatalf("work pay grew on replay: %v -> %v",
			base["work_pay_dollars"], costs["work_pay_dollars"])
	}
	// The replayed task must not be handed back to its voter either.
	if _, ok, _ := c.FetchTask(w1); ok {
		t.Fatal("worker re-offered a task it already answered")
	}

	// Complete the quorum, then replay both submissions against the done
	// task: still the original acknowledgements, no terminated pay.
	if _, ok, _ := c.FetchTask(w2); !ok {
		t.Fatal("w2 got no task")
	}
	if acc, _, _ := c.Submit(w2, ids[0], []int{1, 1}); !acc {
		t.Fatal("quorum submit rejected")
	}
	for _, w := range []int{w1, w2} {
		acc, term, err := c.Submit(w, ids[0], []int{0, 1})
		if err != nil || !acc || term {
			t.Fatalf("replay after completion (worker %d): accepted=%v terminated=%v err=%v",
				w, acc, term, err)
		}
	}
	if st, _ := c.Result(ids[0]); st.Answers != 2 {
		t.Fatalf("answers = %d, want 2", st.Answers)
	}
	costs := fetchCosts(t, c)
	if costs["terminated_pay_dollars"] != 0 {
		t.Fatalf("terminated pay = %v, want 0 (replays are not stragglers)",
			costs["terminated_pay_dollars"])
	}
	if want := 2 * 2 * 0.02; costs["work_pay_dollars"] != want {
		t.Fatalf("work pay = %v, want %v (two 2-record answers)", costs["work_pay_dollars"], want)
	}
	ws, err := c.Workers()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.Completed != 1 {
			t.Fatalf("worker %d completed = %d, want 1 (replays must not inflate stats)",
				w.ID, w.Completed)
		}
	}
	if status, _ := c.Status(); status["terminated"] != 0 {
		t.Fatalf("terminated counter = %d, want 0", status["terminated"])
	}
}

// A replayed straggler submission (the worker lost the duplicate race, got
// its terminated acknowledgement, and the response was lost) must be
// re-acknowledged without a second termination payment or counter bump.
func TestTerminatedReplayIdempotent(t *testing.T) {
	c, _ := newTestServer(t, Config{SpeculationLimit: 1})
	ids, _ := c.SubmitTasks([]TaskSpec{{Records: []string{"x"}, Classes: 2}})
	fast, _ := c.Join("fast")
	slow, _ := c.Join("slow")
	if _, ok, _ := c.FetchTask(slow); !ok {
		t.Fatal("slow got no task")
	}
	if _, ok, _ := c.FetchTask(fast); !ok {
		t.Fatal("fast got no duplicate")
	}
	if acc, _, _ := c.Submit(fast, ids[0], []int{1}); !acc {
		t.Fatal("fast answer rejected")
	}
	// Slow loses the race: paid and counted once...
	if acc, term, _ := c.Submit(slow, ids[0], []int{0}); acc || !term {
		t.Fatalf("late submit: accepted=%v terminated=%v", acc, term)
	}
	base := fetchCosts(t, c)
	// ...and replays keep getting the same acknowledgement without paying.
	for i := 0; i < 3; i++ {
		if acc, term, err := c.Submit(slow, ids[0], []int{0}); err != nil || acc || !term {
			t.Fatalf("replay %d: accepted=%v terminated=%v err=%v", i, acc, term, err)
		}
	}
	costs := fetchCosts(t, c)
	if costs["terminated_pay_dollars"] != base["terminated_pay_dollars"] {
		t.Fatalf("terminated pay grew on replay: %v -> %v",
			base["terminated_pay_dollars"], costs["terminated_pay_dollars"])
	}
	if status, _ := c.Status(); status["terminated"] != 1 {
		t.Fatalf("terminated counter = %d, want 1", status["terminated"])
	}
}

// intQuery must reject integers with trailing garbage instead of silently
// truncating "12abc" to 12.
func TestBadQueryParamsRejected(t *testing.T) {
	c, _ := newTestServer(t, Config{})
	wid, _ := c.Join("w")
	c.SubmitTasks([]TaskSpec{{Records: []string{"a"}, Classes: 2}})
	for _, path := range []string{
		"/api/task?worker_id=1abc",
		"/api/task?worker_id=",
		"/api/task",
		"/api/result?task_id=1x",
		"/api/result?task_id=0x1",
	} {
		r, err := c.HTTP.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != 400 {
			t.Errorf("GET %s: status %d, want 400", path, r.StatusCode)
		}
	}
	// Sanity: the plain form still works.
	if _, ok, err := c.FetchTask(wid); err != nil || !ok {
		t.Fatalf("well-formed fetch broken: ok=%v err=%v", ok, err)
	}
}
