package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary codec: a compact, versioned encoding so digests can ship over the
// wire protocol or persist in a snapshot. Layout (little-endian):
//
//	[1]  version
//	[8]  compression (float64 bits)
//	[uv] count (uvarint)
//	[8]  sum, [8] min, [8] max   (present only when count > 0)
//	[uv] centroid count
//	[16]·n  (mean, weight) float64 pairs, means ascending
//
// Decoding is strict: every structural invariant a decoded digest relies
// on (sorted means, positive finite weights, weight total matching count)
// is validated, so a corrupt or hostile payload cannot poison quantile
// reads later.

// codecVersion pins the encoding; additive evolution bumps it.
const codecVersion = 1

// ErrCodec reports a malformed digest encoding.
var ErrCodec = errors.New("sketch: malformed digest encoding")

// AppendBinary appends the digest's encoding to b and returns the extended
// slice. The buffer is flushed first.
func (t *TDigest) AppendBinary(b []byte) []byte {
	t.flush()
	b = append(b, codecVersion)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.compression))
	b = binary.AppendUvarint(b, uint64(t.count))
	if t.count > 0 {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.sum))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.min))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.max))
	}
	b = binary.AppendUvarint(b, uint64(len(t.means)))
	for i := range t.means {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.means[i]))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.weights[i]))
	}
	return b
}

// Decode parses an encoding produced by AppendBinary, consuming the whole
// input (trailing bytes are rejected).
func Decode(data []byte) (*TDigest, error) {
	d := decoder{b: data}
	v, err := d.byte1()
	if err != nil {
		return nil, err
	}
	if v != codecVersion {
		return nil, fmt.Errorf("sketch: digest encoding version %d, want %d", v, codecVersion)
	}
	comp, err := d.f64()
	if err != nil {
		return nil, err
	}
	if math.IsNaN(comp) || comp < 10 || comp > 1e6 {
		return nil, fmt.Errorf("%w: compression %g out of range", ErrCodec, comp)
	}
	count, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	t := New(comp)
	t.count = int64(count)
	if count > 0 {
		if t.sum, err = d.f64(); err != nil {
			return nil, err
		}
		if t.min, err = d.f64(); err != nil {
			return nil, err
		}
		if t.max, err = d.f64(); err != nil {
			return nil, err
		}
		if math.IsNaN(t.sum) || math.IsNaN(t.min) || math.IsNaN(t.max) || t.min > t.max {
			return nil, fmt.Errorf("%w: bad summary stats", ErrCodec)
		}
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if (count == 0) != (n == 0) {
		return nil, fmt.Errorf("%w: count %d with %d centroids", ErrCodec, count, n)
	}
	// Each encoded centroid is 16 bytes: bound the allocation by the
	// remaining payload before trusting the count.
	if n > uint64(len(d.b)-d.i)/16 {
		return nil, fmt.Errorf("%w: centroid count exceeds payload", ErrCodec)
	}
	t.means = make([]float64, n)
	t.weights = make([]float64, n)
	var wsum float64
	for i := uint64(0); i < n; i++ {
		m, err := d.f64()
		if err != nil {
			return nil, err
		}
		w, err := d.f64()
		if err != nil {
			return nil, err
		}
		if math.IsNaN(m) || math.IsInf(m, 0) || math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, fmt.Errorf("%w: bad centroid", ErrCodec)
		}
		if i > 0 && m < t.means[i-1] {
			return nil, fmt.Errorf("%w: centroid means out of order", ErrCodec)
		}
		t.means[i] = m
		t.weights[i] = w
		wsum += w
	}
	if n > 0 {
		if math.Abs(wsum-float64(count)) > 1e-6*float64(count)+1e-9 {
			return nil, fmt.Errorf("%w: centroid weight %g does not match count %d", ErrCodec, wsum, count)
		}
		if t.means[0] < t.min || t.means[n-1] > t.max {
			return nil, fmt.Errorf("%w: centroids outside [min, max]", ErrCodec)
		}
	}
	t.wsum = wsum
	if d.i != len(d.b) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCodec)
	}
	return t, nil
}

type decoder struct {
	b []byte
	i int
}

func (d *decoder) byte1() (byte, error) {
	if d.i >= len(d.b) {
		return 0, fmt.Errorf("%w: truncated", ErrCodec)
	}
	v := d.b[d.i]
	d.i++
	return v, nil
}

func (d *decoder) f64() (float64, error) {
	if len(d.b)-d.i < 8 {
		return 0, fmt.Errorf("%w: truncated", ErrCodec)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.i:]))
	d.i += 8
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.i:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated", ErrCodec)
	}
	d.i += n
	return v, nil
}
