package sketch

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Recorder is the concurrent front-end over TDigest for hot-path latency
// recording: a small striped set of independently-locked digests. Record
// picks a stripe round-robin with one atomic increment and appends under
// that stripe's lock — a handful of nanoseconds, never the owning
// subsystem's lock — and Snapshot merges the stripes into one digest at
// scrape time. Stripe digests allocate their buffers lazily on first use,
// so an unused recorder (an op that never happens) costs only its headers.
type Recorder struct {
	next    atomic.Uint32
	mask    uint32
	stripes []stripe
}

// stripe pads to its own cache line so two cores recording on adjacent
// stripes do not false-share.
type stripe struct {
	mu sync.Mutex
	d  TDigest
	_  [24]byte
}

// NewRecorder returns a recorder whose merged digests use the given
// compression (<= 0 selects DefaultCompression). Stripe count follows
// GOMAXPROCS, rounded up to a power of two and capped at 8 — beyond that
// the atomic round-robin spreads contention thinner than the lock costs.
func NewRecorder(compression float64) *Recorder {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 8 {
		n <<= 1
	}
	r := &Recorder{mask: uint32(n - 1), stripes: make([]stripe, n)}
	for i := range r.stripes {
		r.stripes[i].d.init(compression)
	}
	return r
}

// Record adds one observation.
func (r *Recorder) Record(v float64) {
	s := &r.stripes[r.next.Add(1)&r.mask]
	s.mu.Lock()
	s.d.Add(v)
	s.mu.Unlock()
}

// Count returns the total observations recorded so far.
func (r *Recorder) Count() int64 {
	var n int64
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n += s.d.Count()
		s.mu.Unlock()
	}
	return n
}

// Snapshot merges the stripes into a fresh digest. Recording continues
// concurrently; the snapshot is a consistent-enough point-in-time view for
// a metrics scrape (each stripe is captured atomically).
func (r *Recorder) Snapshot() *TDigest {
	out := New(r.stripes[0].d.compression)
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		out.Merge(&s.d)
		s.mu.Unlock()
	}
	return out
}
