// Package sketch implements a mergeable streaming quantile sketch: the
// merging t-digest of Dunning & Ertl, with the arcsine scale function
// k₁(q) = (δ/2π)·asin(2q−1). Centroids near the tails hold few points and
// centroids near the median hold many, so relative error is tightest at
// the extreme quantiles — exactly where a latency p99 lives.
//
// Unlike the P² estimator this replaces in internal/server, two digests
// built on disjoint streams merge into one whose quantiles approximate the
// union stream's: the property a sharded fabric needs to serve one true
// fabric-wide percentile from per-shard observations. The digest is
// zero-dependency, allocation-free at steady state (all buffers are
// retained and reused across flushes), and has a compact binary codec
// (codec.go) so sketches can ship over the wire and persist.
package sketch

import (
	"math"
	"slices"
)

// DefaultCompression is the δ parameter used when the caller does not pick
// one. 100 keeps ~δ centroids (a few KB) and holds tail quantiles to well
// under 1% relative error on unimodal streams.
const DefaultCompression = 100

// TDigest is a mergeable quantile sketch. Add buffers points and folds the
// buffer into the centroid list when it fills; Quantile, Merge and the
// codec flush the buffer first. Not safe for concurrent use — Recorder
// provides the striped concurrent front-end.
type TDigest struct {
	compression float64

	// Sorted centroid list (means ascending) and its total weight.
	means   []float64
	weights []float64
	wsum    float64

	// Unmerged unit-weight samples.
	buf []float64

	// Scratch for the merge-compress pass, swapped with means/weights each
	// flush so a settled digest allocates nothing.
	scratchM []float64
	scratchW []float64

	count    int64
	sum      float64
	min, max float64
}

// New returns an empty digest with the given compression (δ); values <= 0
// select DefaultCompression.
func New(compression float64) *TDigest {
	t := &TDigest{}
	t.init(compression)
	return t
}

func (t *TDigest) init(compression float64) {
	if compression <= 0 {
		compression = DefaultCompression
	}
	t.compression = compression
	t.min = math.Inf(1)
	t.max = math.Inf(-1)
}

// bufCap sizes the unmerged-sample buffer: a few multiples of δ amortizes
// the O(δ + buffer) merge pass to O(log buffer) comparisons per point.
func (t *TDigest) bufCap() int {
	n := int(4 * t.compression)
	if n < 64 {
		n = 64
	}
	if n > 1024 {
		n = 1024
	}
	return n
}

// Compression returns the digest's δ parameter.
func (t *TDigest) Compression() float64 { return t.compression }

// Count returns the number of added observations (including merged-in
// digests' observations).
func (t *TDigest) Count() int64 { return t.count }

// Sum returns the sum of all observations.
func (t *TDigest) Sum() float64 { return t.sum }

// Min returns the smallest observation (0 when empty).
func (t *TDigest) Min() float64 {
	if t.count == 0 {
		return 0
	}
	return t.min
}

// Max returns the largest observation (0 when empty).
func (t *TDigest) Max() float64 {
	if t.count == 0 {
		return 0
	}
	return t.max
}

// Add records one observation. Non-finite values are dropped: a poisoned
// division upstream must not destroy the whole sketch.
func (t *TDigest) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if t.buf == nil {
		t.buf = make([]float64, 0, t.bufCap())
	}
	t.buf = append(t.buf, x)
	t.count++
	t.sum += x
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
}

// Merge folds other into t. Both digests' buffers are flushed (other's
// internal representation compacts but its observations are untouched).
func (t *TDigest) Merge(other *TDigest) {
	if other == nil || other.count == 0 {
		return
	}
	other.flush()
	t.flush()
	t.mergeSorted(other.means, other.weights)
	t.count += other.count
	t.sum += other.sum
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
}

// flush folds the buffered samples into the centroid list.
func (t *TDigest) flush() {
	if len(t.buf) == 0 {
		return
	}
	slices.Sort(t.buf)
	t.mergeSorted(t.buf, nil)
	t.buf = t.buf[:0]
}

// kOf is the scale function k₁; qOf is its inverse. k₁ spans [-δ/4, δ/4]
// over q ∈ [0, 1], and a centroid may span at most one unit of k — which
// is what bounds both the centroid count (≈ δ) and the per-centroid weight
// near the tails (vanishing, so tail quantiles interpolate between nearly
// raw points).
func (t *TDigest) kOf(q float64) float64 {
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

func (t *TDigest) qOf(k float64) float64 {
	if k >= t.compression/4 {
		return 1
	}
	if k <= -t.compression/4 {
		return 0
	}
	return (math.Sin(2*math.Pi*k/t.compression) + 1) / 2
}

// mergeSorted merges a sorted weighted stream (ws == nil means unit
// weights) with the centroid list and compresses the result in one pass,
// greedily growing each output centroid until it would cross a k-size
// boundary.
func (t *TDigest) mergeSorted(ms, ws []float64) {
	var streamW float64
	if ws == nil {
		streamW = float64(len(ms))
	} else {
		for _, w := range ws {
			streamW += w
		}
	}
	total := t.wsum + streamW
	if total == 0 {
		return
	}
	outM := t.scratchM[:0]
	outW := t.scratchW[:0]

	i, j := 0, 0 // i over t.means, j over ms
	var curM, curW, wSoFar float64
	first := true
	qLimit := t.qOf(t.kOf(0)+1) * total
	for i < len(t.means) || j < len(ms) {
		var m float64
		w := 1.0
		if i < len(t.means) && (j >= len(ms) || t.means[i] <= ms[j]) {
			m, w = t.means[i], t.weights[i]
			i++
		} else {
			m = ms[j]
			if ws != nil {
				w = ws[j]
			}
			j++
		}
		if first {
			curM, curW, first = m, w, false
			continue
		}
		if wSoFar+curW+w <= qLimit {
			// Still inside the current centroid's k-budget: absorb.
			curM += (m - curM) * w / (curW + w)
			curW += w
			continue
		}
		outM = append(outM, curM)
		outW = append(outW, curW)
		wSoFar += curW
		qLimit = t.qOf(t.kOf(wSoFar/total)+1) * total
		curM, curW = m, w
	}
	if !first {
		outM = append(outM, curM)
		outW = append(outW, curW)
	}
	t.means, t.scratchM = outM, t.means[:0]
	t.weights, t.scratchW = outW, t.weights[:0]
	t.wsum = total
}

// Quantile returns the estimated q-th quantile (q clamped to [0, 1]).
// An empty digest reports 0; a single observation is returned exactly at
// every q.
func (t *TDigest) Quantile(q float64) float64 {
	t.flush()
	n := len(t.means)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	if n == 1 {
		// One centroid: with ≤ 1 unit of k it is either a single point or a
		// tight cluster; its mean is the best answer at every interior q.
		return t.means[0]
	}
	target := q * t.wsum
	cum := 0.0
	for i := 0; i < n; i++ {
		center := cum + t.weights[i]/2
		if target < center {
			if i == 0 {
				// Below the first centroid's center: interpolate from min.
				return t.min + (t.means[0]-t.min)*(target/center)
			}
			prev := cum - t.weights[i-1]/2
			frac := (target - prev) / (center - prev)
			return t.means[i-1] + (t.means[i]-t.means[i-1])*frac
		}
		cum += t.weights[i]
	}
	last := cum - t.weights[n-1]/2
	frac := (target - last) / (t.wsum - last)
	return t.means[n-1] + (t.max-t.means[n-1])*frac
}

// Centroids returns the digest's centroid count after a flush (codec and
// test introspection).
func (t *TDigest) Centroids() int {
	t.flush()
	return len(t.means)
}
