package sketch

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	d := New(DefaultCompression)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 25000; i++ {
		d.Add(rng.ExpFloat64())
	}
	got, err := Decode(d.AppendBinary(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Count() != d.Count() || got.Sum() != d.Sum() || got.Min() != d.Min() || got.Max() != d.Max() {
		t.Fatalf("summary stats changed across round trip")
	}
	// The codec carries centroids verbatim, so quantiles are bit-identical.
	for _, q := range []float64{0, 0.01, 0.5, 0.95, 0.99, 1} {
		if got.Quantile(q) != d.Quantile(q) {
			t.Errorf("q=%g: %g != %g after round trip", q, got.Quantile(q), d.Quantile(q))
		}
	}
	// A decoded digest must keep working as a live sketch.
	got.Add(3)
	other := New(DefaultCompression)
	other.Add(1)
	got.Merge(other)
	if got.Count() != d.Count()+2 {
		t.Fatalf("decoded digest not usable: count %d", got.Count())
	}
}

func TestCodecEmptyDigest(t *testing.T) {
	d := New(DefaultCompression)
	got, err := Decode(d.AppendBinary(nil))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got.Count() != 0 || got.Quantile(0.5) != 0 {
		t.Fatalf("empty digest round trip changed state")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	d := New(DefaultCompression)
	for i := 0; i < 1000; i++ {
		d.Add(float64(i))
	}
	enc := d.AppendBinary(nil)

	// Every truncation must fail cleanly, never panic or half-decode.
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	bad := append([]byte(nil), enc...)
	bad[0] = codecVersion + 1
	if _, err := Decode(bad); err == nil {
		t.Fatal("unknown version accepted")
	}

	// Corrupt the compression to an absurd value.
	bad = append([]byte(nil), enc...)
	binary.LittleEndian.PutUint64(bad[1:], math.Float64bits(-5))
	if _, err := Decode(bad); err == nil {
		t.Fatal("negative compression accepted")
	}

	// Zero out a centroid weight (weights must be positive, and the total
	// must match the count).
	bad = append([]byte(nil), enc...)
	binary.LittleEndian.PutUint64(bad[len(bad)-8:], math.Float64bits(0))
	if _, err := Decode(bad); err == nil {
		t.Fatal("zero centroid weight accepted")
	}

	// Swap the last two centroid means out of order.
	bad = append([]byte(nil), enc...)
	lastMean := bad[len(bad)-16:]
	prevMean := bad[len(bad)-32:]
	m1 := binary.LittleEndian.Uint64(prevMean)
	m2 := binary.LittleEndian.Uint64(lastMean)
	binary.LittleEndian.PutUint64(prevMean, m2)
	binary.LittleEndian.PutUint64(lastMean, m1)
	if _, err := Decode(bad); err == nil {
		t.Fatal("unsorted centroid means accepted")
	}
}
