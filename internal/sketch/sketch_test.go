package sketch

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/clamshell/clamshell/internal/stats"
)

// exactQuantile computes the sample quantile by sorting (linear
// interpolation between order statistics).
func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return 0
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i] + (s[i+1]-s[i])*frac
}

// relErr is |got-want| relative to the stream's scale (guarded so exact
// values near zero do not blow the ratio up).
func relErr(got, want, scale float64) float64 {
	denom := math.Abs(want)
	if denom < 1e-3*scale {
		denom = 1e-3 * scale
	}
	return math.Abs(got-want) / denom
}

// rankOf returns the empirical CDF of v over the stream: the fraction of
// samples ≤ v.
func rankOf(xs []float64, v float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := sort.SearchFloat64s(s, v)
	for i < len(s) && s[i] <= v {
		i++
	}
	return float64(i) / float64(len(s))
}

// checkQuantile asserts the digest's estimate at q is accurate either in
// value space (≤ 5% relative error vs the exact sample quantile) or in rank
// space (the estimate's empirical rank within 0.01 of q). The rank-space
// escape matters at quantile-function discontinuities — a bimodal stream's
// cliff, a heavy tail's extreme order statistics — where the t-digest
// guarantee is on rank, and *any* value between the modes is a correct
// answer.
func checkQuantile(t *testing.T, name string, xs []float64, q, got float64) {
	t.Helper()
	want := exactQuantile(xs, q)
	scale := exactQuantile(xs, 0.99)
	if relErr(got, want, scale) <= 0.05 {
		return
	}
	if r := rankOf(xs, got); math.Abs(r-q) <= 0.01 {
		return
	}
	t.Errorf("%s q=%g: digest %g, exact %g (rel err %.3f, rank %.4f)",
		name, q, got, want, relErr(got, want, scale), rankOf(xs, got))
}

// streams used by the property tests: distinct shapes so the scale
// function's tail behavior is exercised on more than uniform data.
func testStreams(n int) map[string][]float64 {
	out := make(map[string][]float64)
	rng := rand.New(rand.NewSource(1))
	u := make([]float64, n)
	for i := range u {
		u[i] = rng.Float64()
	}
	out["uniform"] = u

	rng = rand.New(rand.NewSource(2))
	e := make([]float64, n)
	for i := range e {
		e[i] = rng.ExpFloat64() * 0.5 // heavy right tail, like latencies
	}
	out["exponential"] = e

	rng = rand.New(rand.NewSource(3))
	l := make([]float64, n)
	for i := range l {
		l[i] = math.Exp(rng.NormFloat64())
	}
	out["lognormal"] = l

	rng = rand.New(rand.NewSource(4))
	b := make([]float64, n)
	for i := range b {
		if rng.Intn(10) == 0 {
			b[i] = 50 + rng.Float64() // 10% slow mode
		} else {
			b[i] = rng.Float64()
		}
	}
	out["bimodal"] = b
	return out
}

func TestQuantileAccuracy(t *testing.T) {
	for name, xs := range testStreams(50000) {
		d := New(DefaultCompression)
		for _, x := range xs {
			d.Add(x)
		}
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
			checkQuantile(t, name, xs, q, d.Quantile(q))
		}
		if d.Count() != int64(len(xs)) {
			t.Errorf("%s: count %d, want %d", name, d.Count(), len(xs))
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	d := New(0)
	if got := d.Quantile(0.5); got != 0 {
		t.Fatalf("empty digest quantile = %g, want 0", got)
	}
	d.Add(6)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := d.Quantile(q); got != 6 {
			t.Fatalf("single-observation quantile(%g) = %g, want exactly 6", q, got)
		}
	}
	d.Add(math.NaN())
	d.Add(math.Inf(1))
	if d.Count() != 1 {
		t.Fatalf("non-finite values must be dropped; count %d", d.Count())
	}
	if d.Min() != 6 || d.Max() != 6 || d.Sum() != 6 {
		t.Fatalf("min/max/sum = %g/%g/%g, want 6/6/6", d.Min(), d.Max(), d.Sum())
	}
}

// TestMergeMatchesUnion pins the property the fabric scrape depends on:
// shard sketches over disjoint substreams, merged, answer like one sketch
// fed the union stream — and both stay close to the exact sample
// quantiles.
func TestMergeMatchesUnion(t *testing.T) {
	for name, xs := range testStreams(40000) {
		const shards = 8
		parts := make([]*TDigest, shards)
		for i := range parts {
			parts[i] = New(DefaultCompression)
		}
		union := New(DefaultCompression)
		for i, x := range xs {
			parts[i%shards].Add(x)
			union.Add(x)
		}
		merged := New(DefaultCompression)
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.Count() != int64(len(xs)) {
			t.Fatalf("%s: merged count %d, want %d", name, merged.Count(), len(xs))
		}
		scale := exactQuantile(xs, 0.99)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			m, u := merged.Quantile(q), union.Quantile(q)
			checkQuantile(t, name+"/merged", xs, q, m)
			if e := relErr(m, u, scale); e > 0.05 &&
				(math.Abs(rankOf(xs, m)-q) > 0.01 || math.Abs(rankOf(xs, u)-q) > 0.01) {
				t.Errorf("%s q=%g: merged %g vs union sketch %g (rel err %.3f)", name, q, m, u, e)
			}
		}
	}
}

// TestMergeAssociativity: (a⊕b)⊕c and a⊕(b⊕c) must agree (within sketch
// tolerance) — the fabric merges shards in arbitrary order.
func TestMergeAssociativity(t *testing.T) {
	xs := testStreams(30000)["exponential"]
	third := len(xs) / 3
	build := func(lo, hi int) *TDigest {
		d := New(DefaultCompression)
		for _, x := range xs[lo:hi] {
			d.Add(x)
		}
		return d
	}
	// (a⊕b)⊕c
	left := build(0, third)
	left.Merge(build(third, 2*third))
	left.Merge(build(2*third, len(xs)))
	// a⊕(b⊕c)
	bc := build(third, 2*third)
	bc.Merge(build(2*third, len(xs)))
	right := build(0, third)
	right.Merge(bc)

	if left.Count() != right.Count() {
		t.Fatalf("counts diverge: %d vs %d", left.Count(), right.Count())
	}
	scale := exactQuantile(xs, 0.99)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		l, r := left.Quantile(q), right.Quantile(q)
		if e := relErr(l, r, scale); e > 0.05 {
			t.Errorf("q=%g: groupings diverge: %g vs %g (rel err %.3f)", q, l, r, e)
		}
	}
}

// TestParityWithP2 is the satellite check for the estimator swap: on an
// identical stream, the t-digest and the P² estimator it replaces must
// agree with each other (and each with the exact quantile) within
// tolerance, so single-shard deployments see continuous numbers across the
// upgrade.
func TestParityWithP2(t *testing.T) {
	streams := testStreams(20000)
	// P² gives no useful guarantee on multimodal streams, so the
	// cross-estimator comparison covers the unimodal latency-like shapes.
	for _, name := range []string{"uniform", "exponential", "lognormal"} {
		xs := streams[name]
		for _, q := range []float64{0.5, 0.95, 0.99} {
			d := New(DefaultCompression)
			p2 := stats.NewP2Quantile(q)
			for _, x := range xs {
				d.Add(x)
				p2.Add(x)
			}
			checkQuantile(t, name, xs, q, d.Quantile(q))
			// P² is itself an approximation, so the cross-estimator
			// tolerance is wider.
			scale := exactQuantile(xs, 0.99)
			if e := relErr(d.Quantile(q), p2.Value(), scale); e > 0.15 {
				t.Errorf("%s q=%g: digest %g vs P² %g (rel err %.3f)", name, q, d.Quantile(q), p2.Value(), e)
			}
		}
	}
}

func TestCompressionBoundsCentroids(t *testing.T) {
	d := New(100)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		d.Add(rng.NormFloat64())
	}
	if n := d.Centroids(); n > 200 {
		t.Fatalf("200k points compressed to %d centroids, want ≤ 2·δ", n)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(DefaultCompression)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				r.Record(rng.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	if n := r.Count(); n != workers*per {
		t.Fatalf("recorder count %d, want %d", n, workers*per)
	}
	snap := r.Snapshot()
	if snap.Count() != workers*per {
		t.Fatalf("snapshot count %d, want %d", snap.Count(), workers*per)
	}
	if p50 := snap.Quantile(0.5); p50 < 0.4 || p50 > 0.6 {
		t.Fatalf("uniform p50 = %g, want ≈ 0.5", p50)
	}
}
