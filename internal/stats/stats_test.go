package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRand(1)
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(Normal(rng, 10, 3))
	}
	if math.Abs(w.Mean()-10) > 0.1 {
		t.Fatalf("mean = %v, want ~10", w.Mean())
	}
	if math.Abs(w.Std()-3) > 0.1 {
		t.Fatalf("std = %v, want ~3", w.Std())
	}
}

func TestTruncNormalRespectsFloor(t *testing.T) {
	rng := NewRand(2)
	for i := 0; i < 10000; i++ {
		if v := TruncNormal(rng, 1, 5, 0.5); v < 0.5 {
			t.Fatalf("TruncNormal returned %v < floor", v)
		}
	}
}

func TestTruncNormalHardFallback(t *testing.T) {
	rng := NewRand(3)
	// Mean far below the floor: rejection will fail, fallback must kick in.
	if v := TruncNormal(rng, -1000, 0.001, 5); v != 5 {
		t.Fatalf("fallback = %v, want 5", v)
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	rng := NewRand(4)
	mu, sigma := LogNormalFromMoments(60, 120)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(LogNormal(rng, mu, sigma))
	}
	if math.Abs(w.Mean()-60)/60 > 0.05 {
		t.Fatalf("mean = %v, want ~60", w.Mean())
	}
	if math.Abs(w.Std()-120)/120 > 0.10 {
		t.Fatalf("std = %v, want ~120", w.Std())
	}
}

func TestLogNormalFromMomentsPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mean <= 0")
		}
	}()
	LogNormalFromMoments(0, 1)
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(5)
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(Exponential(rng, 0.5)) // mean 2
	}
	if math.Abs(w.Mean()-2) > 0.05 {
		t.Fatalf("mean = %v, want ~2", w.Mean())
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := NewRand(6)
	if Bernoulli(rng, 0) {
		t.Fatal("Bernoulli(0) = true")
	}
	if !Bernoulli(rng, 1) {
		t.Fatal("Bernoulli(1) = false")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	if p := float64(hits) / 10000; math.Abs(p-0.3) > 0.02 {
		t.Fatalf("empirical p = %v, want ~0.3", p)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want 32/7", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty/short-slice edge cases wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s := Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("Summarize(nil).N != 0")
	}
	if Summarize(xs).String() == "" {
		t.Fatal("String() empty")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 1 || pts[2].X != 3 {
		t.Fatalf("not sorted: %v", pts)
	}
	if pts[2].P != 1 {
		t.Fatalf("last P = %v, want 1", pts[2].P)
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) != nil")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := NewRand(7)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64() * 17
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-6 {
		t.Fatalf("Welford var %v != batch %v", w.Variance(), Variance(xs))
	}
}

func TestSignificantlyAbove(t *testing.T) {
	// Clearly above: mean 20 vs threshold 8 with tight std and many samples.
	if !SignificantlyAbove(20, 2, 30, 8, 0.05) {
		t.Fatal("clear outlier not flagged")
	}
	// Below the threshold: never significant.
	if SignificantlyAbove(5, 2, 30, 8, 0.05) {
		t.Fatal("below-threshold mean flagged")
	}
	// Above but noisy with tiny n: not significant.
	if SignificantlyAbove(9, 20, 3, 8, 0.05) {
		t.Fatal("noisy small sample flagged")
	}
	// n < 2 falls back to plain comparison.
	if !SignificantlyAbove(10, 0, 1, 8, 0.05) {
		t.Fatal("n=1 fallback should compare means")
	}
	if SignificantlyAbove(10, 0, 0, 8, 0.05) {
		t.Fatal("n=0 should never be significant")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotoneBounded(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return v1 <= v2 && v1 >= sorted[0] && v2 <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford mean always lies within [min, max] of inputs.
func TestPropertyWelfordMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			n++
		}
		if n == 0 {
			return true
		}
		return w.Mean() >= lo-1e-6 && w.Mean() <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
