package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram over [Min, Max) with overflow and
// underflow buckets, used for latency reporting in the routing server and
// experiment harness.
type Histogram struct {
	Min, Max float64
	counts   []int
	under    int
	over     int
	total    int
}

// NewHistogram creates a histogram with n buckets over [min, max). n < 1 or
// max <= min panics: both are programming errors.
func NewHistogram(min, max float64, n int) *Histogram {
	if n < 1 || max <= min {
		panic(fmt.Sprintf("stats: bad histogram spec [%v, %v) x%d", min, max, n))
	}
	return &Histogram{Min: min, Max: max, counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		h.over++
	default:
		i := int(float64(len(h.counts)) * (x - h.Min) / (h.Max - h.Min))
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// scan of bucket boundaries; under/overflow clamp to Min/Max.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target {
		return h.Min
	}
	width := (h.Max - h.Min) / float64(len(h.counts))
	for i, c := range h.counts {
		cum += float64(c)
		if cum >= target {
			return h.Min + width*float64(i+1)
		}
	}
	return h.Max
}

// String renders a compact bar view for logs.
func (h *Histogram) String() string {
	maxC := 1
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	width := (h.Max - h.Min) / float64(len(h.counts))
	for i, c := range h.counts {
		bars := int(math.Round(20 * float64(c) / float64(maxC)))
		fmt.Fprintf(&b, "[%6.2f) %-20s %d\n", h.Min+width*float64(i+1),
			strings.Repeat("#", bars), c)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "under=%d over=%d\n", h.under, h.over)
	}
	return b.String()
}

// EWMA is an exponentially weighted moving average — a recency-weighted
// latency estimator for workers whose speed drifts over time (the paper
// notes "workers may not maintain consistent speed over time").
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1]; higher = more reactive.
	Alpha float64

	value float64
	n     int
}

// Add incorporates one observation.
func (e *EWMA) Add(x float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.2
	}
	if e.n == 0 {
		e.value = x
	} else {
		e.value = a*x + (1-a)*e.value
	}
	e.n++
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// N returns the number of observations.
func (e *EWMA) N() int { return e.n }
