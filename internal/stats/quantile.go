package stats

import "sort"

// P2Quantile is the Jain–Chlamtac P² streaming quantile estimator: it
// tracks one quantile of an unbounded stream in O(1) space by maintaining
// five markers whose heights are adjusted with piecewise-parabolic
// interpolation. The routing server uses it to report live latency
// percentiles (p50/p95/p99 of task round-trips) without retaining every
// observation — the measurement the paper's batch-predictability argument
// (§4.1) says crowd query optimizers need.
type P2Quantile struct {
	p float64 // target quantile in (0, 1)

	n       int        // observations so far
	heights [5]float64 // marker heights (estimates)
	pos     [5]float64 // actual marker positions
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments per observation
	initial []float64  // first five observations, pre-initialization
}

// NewP2Quantile creates an estimator for quantile p in (0, 1), e.g. 0.95.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 {
		p = 0.5
	}
	if p >= 1 {
		p = 0.99
	}
	return &P2Quantile{p: p}
}

// P returns the target quantile.
func (q *P2Quantile) P() float64 { return q.p }

// N returns the number of observations so far.
func (q *P2Quantile) N() int { return q.n }

// Add feeds one observation into the estimator.
func (q *P2Quantile) Add(x float64) {
	q.n++
	if len(q.initial) < 5 {
		q.initial = append(q.initial, x)
		if len(q.initial) == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.heights[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
			p := q.p
			q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}

	// Find the cell containing x and update the extremes.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}

	// Shift positions of markers above the cell, advance desired positions.
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by sign (±1):
//
//	h'_i = h_i + s/(p_{i+1}−p_{i−1}) · [ (p_i−p_{i−1}+s)·(h_{i+1}−h_i)/(p_{i+1}−p_i)
//	                                   + (p_{i+1}−p_i−s)·(h_i−h_{i−1})/(p_i−p_{i−1}) ]
func (q *P2Quantile) parabolic(i int, sign float64) float64 {
	below := q.pos[i] - q.pos[i-1] + sign
	above := q.pos[i+1] - q.pos[i] - sign
	den := q.pos[i+1] - q.pos[i-1]
	slopeUp := (q.heights[i+1] - q.heights[i]) / (q.pos[i+1] - q.pos[i])
	slopeDown := (q.heights[i] - q.heights[i-1]) / (q.pos[i] - q.pos[i-1])
	return q.heights[i] + sign/den*(below*slopeUp+above*slopeDown)
}

// linear is the fallback linear height prediction.
func (q *P2Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return q.heights[i] + sign*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. Before five observations it
// returns the exact sample quantile of what has been seen (0 when empty).
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if len(q.initial) < 5 {
		s := append([]float64(nil), q.initial...)
		sort.Float64s(s)
		return percentileSorted(s, q.p*100)
	}
	return q.heights[2]
}

// Min returns the smallest observation seen (0 when empty).
func (q *P2Quantile) Min() float64 {
	if q.n == 0 {
		return 0
	}
	if len(q.initial) < 5 {
		m := q.initial[0]
		for _, v := range q.initial[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	return q.heights[0]
}

// Max returns the largest observation seen (0 when empty).
func (q *P2Quantile) Max() float64 {
	if q.n == 0 {
		return 0
	}
	if len(q.initial) < 5 {
		m := q.initial[0]
		for _, v := range q.initial[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	return q.heights[4]
}
