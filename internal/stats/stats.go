// Package stats provides the probability and summary-statistics machinery
// shared by the CLAMShell simulator: random sampling from the distributions
// used to model crowd workers, percentile/CDF summaries for reporting, online
// moment tracking, and the one-sided significance test used by the pool
// maintainer's eviction rule.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a seeded PRNG. Every experiment threads an explicit seed so
// runs are reproducible bit-for-bit.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Normal draws from N(mean, std²). std must be non-negative.
func Normal(rng *rand.Rand, mean, std float64) float64 {
	return mean + std*rng.NormFloat64()
}

// TruncNormal draws from N(mean, std²) truncated below at lo, by rejection
// with a hard fallback to lo so the function always terminates.
func TruncNormal(rng *rand.Rand, mean, std, lo float64) float64 {
	for i := 0; i < 64; i++ {
		if v := Normal(rng, mean, std); v >= lo {
			return v
		}
	}
	return lo
}

// LogNormal draws from a lognormal distribution with the given parameters of
// the underlying normal (mu, sigma). Its median is exp(mu).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// LogNormalFromMoments converts a desired mean m and standard deviation s of
// the lognormal itself into the (mu, sigma) parameters of the underlying
// normal. m must be positive.
func LogNormalFromMoments(m, s float64) (mu, sigma float64) {
	if m <= 0 {
		panic(fmt.Sprintf("stats: lognormal mean must be positive, got %v", m))
	}
	v := s * s
	sigma2 := math.Log(1 + v/(m*m))
	mu = math.Log(m) - sigma2/2
	return mu, math.Sqrt(sigma2)
}

// Exponential draws from Exp(rate). rate must be positive.
func Exponential(rng *rand.Rand, rate float64) float64 {
	return rng.ExpFloat64() / rate
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. It copies xs; the input is not
// modified. Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds the descriptive statistics reported throughout the
// experiment harness.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	P90    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		Std:    Std(s),
		Min:    s[0],
		Median: percentileSorted(s, 50),
		P90:    percentileSorted(s, 90),
		P95:    percentileSorted(s, 95),
		P99:    percentileSorted(s, 99),
		Max:    s[len(s)-1],
	}
}

// String renders the summary in one line for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P90, s.P99, s.Max)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples <= X
}

// CDF returns the empirical CDF of xs as a sorted list of points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pts := make([]CDFPoint, len(s))
	for i, x := range s {
		pts[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return pts
}

// Welford tracks running mean and variance without storing samples
// (Welford's online algorithm). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running sample variance (0 if n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// normalCDF is Φ(z), the standard normal CDF.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// SignificantlyAbove reports whether the sample (n observations with the
// given mean and standard deviation) is significantly above the threshold at
// significance level alpha, using a one-sided z-test (a good approximation of
// the t-test for the sample sizes the maintainer sees, and exactly the
// "one-sided significance test" the paper's pool maintenance algorithm
// calls for). With fewer than 2 observations it falls back to a plain
// comparison of the mean against the threshold.
func SignificantlyAbove(mean, std float64, n int, threshold, alpha float64) bool {
	if n < 2 || std == 0 {
		return n >= 1 && mean > threshold
	}
	z := (mean - threshold) / (std / math.Sqrt(float64(n)))
	p := 1 - normalCDF(z)
	return p < alpha
}
