package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestP2MedianUniform(t *testing.T) {
	rng := NewRand(1)
	q := NewP2Quantile(0.5)
	for i := 0; i < 20000; i++ {
		q.Add(rng.Float64())
	}
	if got := q.Value(); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("p50 of U(0,1) = %v, want ~0.5", got)
	}
}

func TestP2TailQuantilesNormal(t *testing.T) {
	rng := NewRand(2)
	cases := []struct {
		p    float64
		want float64 // standard normal quantile
		tol  float64
	}{
		{0.5, 0, 0.05},
		{0.95, 1.6449, 0.1},
		{0.99, 2.3263, 0.2},
	}
	for _, c := range cases {
		q := NewP2Quantile(c.p)
		for i := 0; i < 50000; i++ {
			q.Add(rng.NormFloat64())
		}
		if got := q.Value(); math.Abs(got-c.want) > c.tol {
			t.Errorf("p%.0f of N(0,1) = %v, want ~%v", c.p*100, got, c.want)
		}
	}
}

func TestP2MatchesExactPercentileOnLognormal(t *testing.T) {
	// Heavy-tailed input — the latency shape the estimator is used on.
	rng := NewRand(3)
	q := NewP2Quantile(0.95)
	var xs []float64
	for i := 0; i < 30000; i++ {
		x := LogNormal(rng, 0, 1)
		xs = append(xs, x)
		q.Add(x)
	}
	exact := Percentile(xs, 95)
	if got := q.Value(); math.Abs(got-exact)/exact > 0.1 {
		t.Fatalf("streaming p95 = %v, exact = %v (>10%% off)", got, exact)
	}
}

func TestP2SmallStreamsExact(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 || q.Min() != 0 || q.Max() != 0 {
		t.Fatal("empty estimator should report zeros")
	}
	for _, x := range []float64{3, 1, 2} {
		q.Add(x)
	}
	if got := q.Value(); got != 2 {
		t.Fatalf("median of {3,1,2} = %v, want 2 (exact before 5 obs)", got)
	}
	if q.Min() != 1 || q.Max() != 3 {
		t.Fatalf("min/max = %v/%v, want 1/3", q.Min(), q.Max())
	}
	if q.N() != 3 {
		t.Fatalf("N = %d, want 3", q.N())
	}
}

func TestP2BoundedByMinMaxProperty(t *testing.T) {
	// Invariant: for any stream, the estimate stays within [min, max] and
	// marker heights remain sorted.
	f := func(seed int64, n uint8) bool {
		rng := NewRand(seed)
		q := NewP2Quantile(0.9)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < int(n)+10; i++ {
			x := rng.NormFloat64() * 100
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			q.Add(x)
		}
		v := q.Value()
		return v >= lo-1e-9 && v <= hi+1e-9 && q.Min() >= lo-1e-9 && q.Max() <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestP2MonotoneAcrossQuantilesProperty(t *testing.T) {
	// p50 <= p90 <= p99 on the same stream.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q50, q90, q99 := NewP2Quantile(0.5), NewP2Quantile(0.9), NewP2Quantile(0.99)
		for i := 0; i < 2000; i++ {
			x := math.Exp(rng.NormFloat64())
			q50.Add(x)
			q90.Add(x)
			q99.Add(x)
		}
		return q50.Value() <= q90.Value()+1e-9 && q90.Value() <= q99.Value()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestP2DegenerateConstantStream(t *testing.T) {
	q := NewP2Quantile(0.95)
	for i := 0; i < 100; i++ {
		q.Add(7)
	}
	if got := q.Value(); got != 7 {
		t.Fatalf("p95 of constant stream = %v, want 7", got)
	}
}

func TestNewP2QuantileClampsP(t *testing.T) {
	if p := NewP2Quantile(-1).P(); p != 0.5 {
		t.Fatalf("p for -1 = %v, want 0.5", p)
	}
	if p := NewP2Quantile(1.5).P(); p != 0.99 {
		t.Fatalf("p for 1.5 = %v, want 0.99", p)
	}
}
