package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(11) // over
	if h.Total() != 12 {
		t.Fatalf("Total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d", i, h.Bucket(i))
		}
	}
	if h.Buckets() != 10 {
		t.Fatalf("Buckets = %d", h.Buckets())
	}
	if !strings.Contains(h.String(), "under=1 over=1") {
		t.Fatal("under/over not reported")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(0.99); math.Abs(q-99) > 2 {
		t.Fatalf("p99 = %v", q)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
}

func TestHistogramEdgeAtMax(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(1) // exactly max -> overflow
	if h.Bucket(3) != 0 {
		t.Fatal("max landed in a bucket")
	}
	h.Add(math.Nextafter(1, 0)) // just under max -> last bucket
	if h.Bucket(3) != 1 {
		t.Fatal("just-under-max missed the last bucket")
	}
}

func TestHistogramBadSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := EWMA{Alpha: 0.3}
	for i := 0; i < 100; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Fatalf("Value = %v", e.Value())
	}
	if e.N() != 100 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestEWMAReactsToShift(t *testing.T) {
	slow := EWMA{Alpha: 0.1}
	fast := EWMA{Alpha: 0.8}
	for i := 0; i < 20; i++ {
		slow.Add(1)
		fast.Add(1)
	}
	for i := 0; i < 3; i++ {
		slow.Add(10)
		fast.Add(10)
	}
	if fast.Value() <= slow.Value() {
		t.Fatalf("high alpha should react faster: fast=%v slow=%v", fast.Value(), slow.Value())
	}
}

func TestEWMADefaultAlpha(t *testing.T) {
	var e EWMA // Alpha 0 -> default
	e.Add(4)
	e.Add(8)
	if v := e.Value(); v <= 4 || v >= 8 {
		t.Fatalf("Value = %v, want between first and last", v)
	}
}

// Property: histogram totals always equal observations, and quantiles are
// monotone in q.
func TestPropertyHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []uint8, q1, q2 uint8) bool {
		h := NewHistogram(0, 256, 16)
		for _, x := range raw {
			h.Add(float64(x))
		}
		if h.Total() != len(raw) {
			return false
		}
		a := float64(q1%101) / 100
		b := float64(q2%101) / 100
		if a > b {
			a, b = b, a
		}
		return h.Quantile(a) <= h.Quantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: EWMA stays within the observed range.
func TestPropertyEWMABounded(t *testing.T) {
	f := func(raw []uint8, alpha uint8) bool {
		if len(raw) == 0 {
			return true
		}
		e := EWMA{Alpha: float64(alpha%100+1) / 100}
		lo, hi := float64(raw[0]), float64(raw[0])
		for _, x := range raw {
			v := float64(x)
			e.Add(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
