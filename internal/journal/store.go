package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/clamshell/clamshell/internal/sketch"
)

// Store is one shard's durability directory:
//
//	MANIFEST      {"version":1,"gen":G} — snap-G is the committed base
//	snap-<G>      compacted snapshot of the live state at wal-<G>'s birth
//	wal-<G>...    op logs; wal-<G> holds every op since snap-<G>
//	retained.log  append-only tallies of demoted completed tasks
//
// Recovery is load snap-<G>, replay wal-<G> (and any wal-<G+k> left by a
// compaction that rotated but crashed before committing), then overlay the
// retained tallies. Compaction is two-phase so a crash at any byte leaves a
// recoverable prefix: Rotate (under the shard lock) atomically starts a new
// wal at the moment the snapshot state is captured; Commit (off the lock)
// makes the snapshot durable, moves the manifest forward with an atomic
// rename, and only then deletes the superseded generation. Until the
// manifest rename lands, recovery uses the previous snapshot plus both wal
// generations — the same state, one generation less compact.
type Store struct {
	dir string

	mu     sync.Mutex
	gen    uint64 // committed (manifest) generation
	cur    uint64 // generation receiving appends (>= gen)
	wal    *os.File
	ret    *os.File
	walOps uint64 // records in the current wal
	err    error  // first write-path error since the last healing commit (see Err)
	errGen uint64 // generation current when err was recorded

	// Replication watermarks: bytes appended to / fsynced into the current
	// wal (header included), the retained log's size, and a counter bumped
	// by every RewriteRetained so a follower mirroring the retained log by
	// offset can detect that the bytes under its feet were replaced.
	walBytes  int64
	walSynced int64
	retBytes  int64
	retEpoch  uint64

	// Fsync policy (see SetSync). dirty marks appended-but-unsynced wal
	// bytes in group mode; syncs counts wal fsyncs (observability + tests).
	mode      SyncMode
	dirty     bool
	syncs     uint64
	groupStop chan struct{}
	groupDone chan struct{}

	// Observability: commit lag (first buffered op → durable fsync) and
	// group-commit batch size, recorded into striped sketches outside mu;
	// pendingOps/dirtySince track the open batch, retRecords the
	// retained-log record count (the aging rewrite trigger).
	lagRec     *sketch.Recorder
	batchRec   *sketch.Recorder
	pendingOps uint64
	dirtySince time.Time
	retRecords int
}

// SyncMode selects when the op log is fsynced. The zero value is SyncOff —
// the historical behavior, where the wal reaches the disk at rotation and
// commit only. Callers that want power-loss durability for individual ops
// pick SyncCommit (one fsync per append, serializing wire-speed submit
// rates on the disk) or SyncGroup (appends mark the log dirty and a short
// ticker batches the fsyncs — bounded data loss, no per-op disk stall).
type SyncMode int

const (
	// SyncOff: no per-op fsync; rotation and commit still sync.
	SyncOff SyncMode = iota
	// SyncCommit: fsync on every appended op before Append returns.
	SyncCommit
	// SyncGroup: batch fsyncs on the group ticker (the default interval is
	// DefaultGroupInterval); an op is durable once the next tick fires.
	SyncGroup
)

// DefaultGroupInterval is the group-commit ticker period when the caller
// does not choose one.
const DefaultGroupInterval = 5 * time.Millisecond

// ParseSyncMode maps the operator-facing -fsync flag values. The empty
// string selects group commit (the recommended default).
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "group":
		return SyncGroup, nil
	case "commit":
		return SyncCommit, nil
	case "off":
		return SyncOff, nil
	}
	return SyncOff, fmt.Errorf("journal: unknown fsync mode %q (want commit, group or off)", s)
}

// SetSync sets the store's fsync policy. interval applies to SyncGroup
// (<= 0 selects DefaultGroupInterval). Call it before serving traffic;
// switching modes stops any previous group ticker.
func (s *Store) SetSync(mode SyncMode, interval time.Duration) {
	s.mu.Lock()
	stop, done := s.groupStop, s.groupDone
	s.groupStop, s.groupDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = mode
	if mode != SyncGroup {
		return
	}
	if interval <= 0 {
		interval = DefaultGroupInterval
	}
	s.groupStop = make(chan struct{})
	s.groupDone = make(chan struct{})
	go s.groupLoop(s.groupStop, s.groupDone, interval)
}

// groupLoop is the group-commit ticker: it fsyncs the wal whenever ops
// accumulated since the previous tick.
func (s *Store) groupLoop(stop, done chan struct{}, interval time.Duration) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			// Drain once on shutdown so the last batch is not lost to a
			// clean Close racing the ticker.
			s.syncDirty()
			return
		case <-t.C:
			s.syncDirty()
		}
	}
}

// syncDirty fsyncs the wal if group-mode appends are pending.
func (s *Store) syncDirty() {
	s.mu.Lock()
	if !s.dirty {
		s.mu.Unlock()
		return
	}
	lag := time.Since(s.dirtySince).Seconds()
	batch := s.pendingOps
	s.clearPendingLocked()
	s.syncs++
	//clamshell:blocking-ok group-commit design: the batch fsync holds the store lock so appends order against it
	err := s.wal.Sync()
	if err != nil {
		s.failLocked(err)
	} else {
		s.walSynced = s.walBytes
	}
	s.mu.Unlock()
	if err == nil {
		s.lagRec.Record(lag)
		s.batchRec.Record(float64(batch))
	}
}

// clearPendingLocked resets the open group-commit batch bookkeeping.
func (s *Store) clearPendingLocked() {
	s.dirty = false
	s.pendingOps = 0
	s.dirtySince = time.Time{}
}

// SyncPending reports whether group-mode appends are awaiting their batch
// fsync.
func (s *Store) SyncPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty
}

// WALSyncs returns how many wal fsyncs the store has issued (all modes).
func (s *Store) WALSyncs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// Recovered is the durable state Open found: the committed snapshot (nil if
// none was ever committed), the op suffix to replay over it, and the
// retained-tally payloads to overlay last.
type Recovered struct {
	Snapshot  []byte
	Ops       []Op
	Retained  [][]byte
	Truncated bool // a torn tail was dropped from a log
}

// manifest is the store's commit point, replaced by atomic rename.
type manifest struct {
	Version int    `json:"version"`
	Gen     uint64 `json:"gen"`
}

const manifestVersion = 1

// File names within a store directory.
const (
	ManifestName = "MANIFEST"
	RetainedName = "retained.log"
)

// WALName returns the op-log file name for a generation.
func WALName(gen uint64) string { return fmt.Sprintf("wal-%d", gen) }

// SnapName returns the snapshot file name for a generation.
func SnapName(gen uint64) string { return fmt.Sprintf("snap-%d", gen) }

// Open opens (creating if needed) a shard store and recovers its durable
// state. The returned store is ready for Append; the caller is expected to
// have applied the Recovered state before the first new op lands.
func Open(dir string) (*Store, Recovered, error) {
	var rec Recovered
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, err
	}
	s := &Store{
		dir:      dir,
		lagRec:   sketch.NewRecorder(sketch.DefaultCompression),
		batchRec: sketch.NewRecorder(sketch.DefaultCompression),
	}

	m, err := s.readManifest()
	if err != nil {
		return nil, rec, err
	}
	s.gen, s.cur = m.Gen, m.Gen

	if data, err := os.ReadFile(s.path(SnapName(s.gen))); err == nil {
		rec.Snapshot = data
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, rec, err
	}

	// Replay wal generations from the committed base upward. Generations
	// are contiguous (Rotate allocates them one at a time); a generation
	// above gen exists only when a compaction rotated and then crashed
	// before committing.
	for g := s.gen; ; g++ {
		payloads, truncated, err := s.recoverLog(s.path(WALName(g)), MagicWAL)
		if errors.Is(err, os.ErrNotExist) {
			if g == s.gen {
				// Fresh generation: create its wal now.
				if err := s.createLog(s.path(WALName(g)), MagicWAL); err != nil {
					return nil, rec, err
				}
				payloads, truncated = nil, false
			} else {
				s.cur = g - 1
				break
			}
		} else if err != nil {
			return nil, rec, err
		}
		s.cur = g
		s.walOps = uint64(len(payloads))
		for _, p := range payloads {
			op, err := DecodeOp(p)
			if err != nil {
				// An undecodable but checksummed record: written by a
				// newer build. Refuse to half-recover.
				return nil, rec, err
			}
			rec.Ops = append(rec.Ops, op)
		}
		if truncated {
			rec.Truncated = true
			// Everything after a tear is garbage from an interrupted
			// write; later generations cannot legitimately exist.
			for gg := g + 1; ; gg++ {
				if os.Remove(s.path(WALName(gg))) != nil {
					break
				}
			}
			break
		}
	}

	// Retained tallies overlay last (they are immutable once written).
	if payloads, truncated, err := s.recoverLog(s.path(RetainedName), MagicRetained); err == nil {
		rec.Retained = payloads
		rec.Truncated = rec.Truncated || truncated
		s.retRecords = len(payloads)
	} else if errors.Is(err, os.ErrNotExist) {
		if err := s.createLog(s.path(RetainedName), MagicRetained); err != nil {
			return nil, rec, err
		}
	} else {
		return nil, rec, err
	}

	if s.wal, err = os.OpenFile(s.path(WALName(s.cur)), os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return nil, rec, err
	}
	// Recovery truncated any torn tail above, so what is on disk now is the
	// durable prefix: both watermarks start at the file size.
	if st, err := s.wal.Stat(); err == nil {
		s.walBytes, s.walSynced = st.Size(), st.Size()
	} else {
		_ = s.wal.Close()
		return nil, rec, err
	}
	if st, err := os.Stat(s.path(RetainedName)); err == nil {
		s.retBytes = st.Size()
	}
	if s.ret, err = os.OpenFile(s.path(RetainedName), os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		// Best-effort: the open itself failed, so there is no store to
		// record a sticky error against; the open error is what surfaces.
		_ = s.wal.Close()
		return nil, rec, err
	}
	s.sweepBelow(s.gen)
	return s, rec, nil
}

// sweepBelow removes wal/snap files of generations below the committed
// one. Commit deletes the generation it supersedes, but a crash between
// its manifest rename and its removal loop strands the old files; without
// this sweep they would accumulate forever.
func (s *Store) sweepBelow(gen uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var g uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%d", &g); n == 1 && err == nil && g < gen {
			os.Remove(s.path(e.Name()))
			continue
		}
		if n, err := fmt.Sscanf(e.Name(), "snap-%d", &g); n == 1 && err == nil && g < gen {
			os.Remove(s.path(e.Name()))
		}
	}
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

func (s *Store) readManifest() (manifest, error) {
	m := manifest{Version: manifestVersion, Gen: 1}
	data, err := os.ReadFile(s.path(ManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return m, s.writeManifest(m)
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("journal: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("journal: manifest version %d, want %d", m.Version, manifestVersion)
	}
	if m.Gen < 1 {
		return m, fmt.Errorf("journal: manifest generation %d out of range", m.Gen)
	}
	return m, nil
}

// writeManifest replaces the manifest via write-to-temp + fsync + rename.
func (s *Store) writeManifest(m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return WriteFileAtomic(s.path(ManifestName), data)
}

// createLog creates a fresh log file holding only its header.
func (s *Store) createLog(path, magic string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := WriteHeader(f, magic); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// recoverLog scans a log file, truncates any torn tail in place, and
// returns the intact record payloads.
func (s *Store) recoverLog(path, magic string) (payloads [][]byte, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	sc, err := NewScanner(f, magic)
	if err != nil {
		f.Close()
		return nil, false, err
	}
	for {
		p, err := sc.Scan()
		if err == io.EOF {
			break
		}
		if err != nil {
			truncated = true
			break
		}
		payloads = append(payloads, p)
	}
	off := sc.Offset()
	f.Close()
	if truncated {
		if err := os.Truncate(path, off); err != nil {
			return nil, true, err
		}
	}
	return payloads, truncated, nil
}

// Append journals one op. It is called on the mutation path while the
// owning shard's lock is held, so records land in mutation order. An I/O
// failure cannot un-apply the mutation; it is recorded sticky (Err) for
// the operator instead of being silently dropped.
func (s *Store) Append(op Op) error {
	payload, err := EncodeOp(op)
	var lag float64
	committed := false
	if err == nil {
		s.mu.Lock()
		err = AppendRecord(s.wal, payload)
		if err == nil {
			s.walOps++
			s.walBytes += 8 + int64(len(payload))
			switch s.mode {
			case SyncCommit:
				s.syncs++
				t0 := time.Now()
				//clamshell:blocking-ok commit mode acknowledges only durable ops; the fsync must precede the unlock
				if err = s.wal.Sync(); err == nil {
					lag = time.Since(t0).Seconds()
					committed = true
					s.walSynced = s.walBytes
				}
			case SyncGroup:
				s.pendingOps++
				if !s.dirty {
					s.dirty = true
					s.dirtySince = time.Now()
				}
			}
		}
		s.mu.Unlock()
	}
	if committed {
		s.lagRec.Record(lag)
		s.batchRec.Record(1)
	}
	if err != nil {
		s.fail(err)
	}
	return err
}

// AppendRetained journals demoted-task tallies and syncs them to disk.
func (s *Store) AppendRetained(payloads [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range payloads {
		if err := AppendRecord(s.ret, p); err != nil {
			s.failLocked(err)
			return err
		}
		s.retRecords++
		s.retBytes += 8 + int64(len(p))
	}
	if len(payloads) > 0 {
		//clamshell:blocking-ok retained tallies must be durable before the commit's manifest rename
		if err := s.ret.Sync(); err != nil {
			s.failLocked(err)
			return err
		}
	}
	return nil
}

// RetainedRecords returns how many records the retained log holds,
// including superseded versions of re-written tallies. The caller compares
// it against the live tally count to decide when a rewrite pays off.
func (s *Store) RetainedRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retRecords
}

// RewriteRetained atomically replaces the retained log with exactly the
// given payloads, discarding superseded versions that the append-only log
// accumulated (tally aging re-appends a task's record each time its shape
// changes). The new log is built beside the old one and swapped in by
// rename, so a crash at any byte leaves a complete log — old or new.
func (s *Store) RewriteRetained(payloads [][]byte) error {
	tmp := s.path(RetainedName + ".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		s.fail(err)
		return err
	}
	werr := WriteHeader(f, MagicRetained)
	for _, p := range payloads {
		if werr != nil {
			break
		}
		werr = AppendRecord(f, p)
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		s.fail(werr)
		return werr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp, s.path(RetainedName)); err != nil {
		os.Remove(tmp)
		s.failLocked(err)
		return err
	}
	if cerr := s.ret.Close(); cerr != nil {
		// The rewritten log is already durable and renamed into place; a
		// close failure on the superseded handle still signals fd-level
		// trouble, so record it without failing the rewrite.
		s.failLocked(cerr)
	}
	if s.ret, err = os.OpenFile(s.path(RetainedName), os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		s.failLocked(err)
		return err
	}
	s.retRecords = len(payloads)
	if st, serr := s.ret.Stat(); serr == nil {
		s.retBytes = st.Size()
	}
	s.retEpoch++
	return nil
}

// Rotate starts generation cur+1: subsequent Appends land in the new wal.
// The caller must hold its shard lock across the state capture and this
// call, so the new wal holds exactly the ops after the captured state. The
// returned generation is passed to Commit.
func (s *Store) Rotate() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.cur + 1
	if err := s.createLog(s.path(WALName(next)), MagicWAL); err != nil {
		s.failLocked(err)
		return 0, err
	}
	f, err := os.OpenFile(s.path(WALName(next)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.failLocked(err)
		return 0, err
	}
	old := s.wal
	s.wal = f
	prev := s.cur
	s.cur = next
	s.walOps = 0
	s.walBytes, s.walSynced = headerLen, headerLen
	// The old.Sync below makes any open group batch durable; fold it into
	// the sketches rather than letting it straddle the generation swap.
	if s.dirty {
		s.lagRec.Record(time.Since(s.dirtySince).Seconds())
		s.batchRec.Record(float64(s.pendingOps))
		s.clearPendingLocked()
	}
	//clamshell:blocking-ok the rotated-out wal must be durable before the generation swap is visible
	if err := old.Sync(); err != nil {
		// The rotated-out wal's tail may not be durable. Record it against
		// the previous generation: the commit that follows folds that
		// generation's ops into a snapshot, healing the gap.
		s.failGenLocked(err, prev)
	}
	if err := old.Close(); err != nil {
		s.failGenLocked(err, prev)
	}
	return next, nil
}

// Commit makes generation gen's snapshot durable and retires everything
// older. newTallies are the tallies of tasks demoted when the snapshot was
// captured; they are made durable before the manifest moves, so a recovery
// from either side of the commit point sees each task exactly once (the
// overlay step deduplicates a task that is still live in the older
// snapshot).
func (s *Store) Commit(gen uint64, snapshot []byte, newTallies [][]byte) error {
	if err := s.AppendRetained(newTallies); err != nil {
		return err
	}
	if err := WriteFileAtomic(s.path(SnapName(gen)), snapshot); err != nil {
		s.fail(err)
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.gen
	if gen < old {
		// A stale cycle must never move the manifest backwards past a
		// generation whose wal was already deleted. Compaction cycles are
		// serialized by the caller; this is the backstop.
		err := fmt.Errorf("journal: stale compaction generation %d (committed %d)", gen, old)
		s.failLocked(err)
		return err
	}
	if err := s.writeManifest(manifest{Version: manifestVersion, Gen: gen}); err != nil {
		s.failLocked(err)
		return err
	}
	s.gen = gen
	if s.err != nil && s.errGen < gen {
		// The committed snapshot was captured at this generation's birth,
		// after the failed write's mutation was applied in memory — the
		// lost record's effect is durable again, so the error has healed.
		s.err = nil
	}
	for g := old; g < gen; g++ {
		os.Remove(s.path(WALName(g)))
		os.Remove(s.path(SnapName(g)))
	}
	return nil
}

// Sync flushes the op log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	wasDirty := s.dirty
	var lag float64
	var batch uint64
	if wasDirty {
		lag = time.Since(s.dirtySince).Seconds()
		batch = s.pendingOps
		s.clearPendingLocked()
	}
	s.syncs++
	//clamshell:blocking-ok explicit Sync drains the open batch; the fsync orders against appends via the lock
	err := s.wal.Sync()
	if err != nil {
		s.failLocked(err)
	} else {
		s.walSynced = s.walBytes
	}
	s.mu.Unlock()
	if err == nil && wasDirty {
		s.lagRec.Record(lag)
		s.batchRec.Record(float64(batch))
	}
	return err
}

// CommitLagSnapshot returns a merged sketch of commit lag: the seconds
// between an op entering the journal and the fsync that made it durable
// (per-op sync time in commit mode, batch age in group mode).
func (s *Store) CommitLagSnapshot() *sketch.TDigest { return s.lagRec.Snapshot() }

// BatchSnapshot returns a merged sketch of group-commit batch sizes (ops
// made durable per fsync; always 1 in commit mode).
func (s *Store) BatchSnapshot() *sketch.TDigest { return s.batchRec.Snapshot() }

// DirtyAge returns how long the oldest unsynced group-mode op has been
// waiting for its batch fsync, or 0 when the wal is clean.
func (s *Store) DirtyAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return 0
	}
	return time.Since(s.dirtySince)
}

// Close stops the group-commit ticker (flushing any pending batch), then
// syncs and closes the store's files.
func (s *Store) Close() error {
	s.mu.Lock()
	stop, done := s.groupStop, s.groupDone
	s.groupStop, s.groupDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	//clamshell:blocking-ok final flush on Close; the store is quiescing
	err := s.wal.Sync()
	if e := s.wal.Close(); err == nil {
		err = e
	}
	if e := s.ret.Close(); err == nil {
		err = e
	}
	return err
}

// Gen returns the generation currently receiving appends.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// WALOps returns how many ops the current wal generation holds.
func (s *Store) WALOps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walOps
}

// Err returns the store's standing write-path error, or nil. A non-nil
// value means the journal may be missing ops since the last committed
// snapshot; it clears when a later compaction commits (the new snapshot
// re-captures the full live state, so nothing is missing anymore).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Store) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

func (s *Store) failLocked(err error) {
	s.failGenLocked(err, s.cur)
}

func (s *Store) failGenLocked(err error, gen uint64) {
	if s.err == nil {
		s.err = err
		s.errGen = gen
	}
}

// HeaderSize is the byte length of every journal file's magic header; a
// replication mirror of a journal file starts appending at this offset.
const HeaderSize = headerLen

// ErrReplReset reports that a follower's replication position no longer
// maps onto this store — the generation was compacted away, the offset is
// past the durable prefix (a primary restart truncated a torn tail), or
// the follower is otherwise out of sync. The only recovery is a fresh
// bootstrap of the shard from BootstrapData.
var ErrReplReset = errors.New("journal: replication position invalid; bootstrap required")

// ReplState is a snapshot of the store's replication watermarks.
type ReplState struct {
	Base          uint64 // committed (manifest) generation
	Cur           uint64 // generation receiving appends
	Durable       int64  // fsynced bytes of wal-<Cur> (all bytes in SyncOff mode)
	Appended      int64  // appended bytes of wal-<Cur>
	RetainedSize  int64  // retained.log size in bytes
	RetainedEpoch uint64 // bumped by every RewriteRetained
}

// durableLocked returns the shippable byte watermark of the current wal.
// SyncOff mode never fsyncs per-op, so replication ships everything
// appended (the mode is explicitly non-durable); otherwise only fsynced
// bytes ship, which is what lets a follower's pull double as an ack that
// the shipped prefix is durable on both sides.
func (s *Store) durableLocked() int64 {
	if s.mode == SyncOff {
		return s.walBytes
	}
	return s.walSynced
}

// ReplState returns the store's current replication watermarks.
func (s *Store) ReplState() ReplState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ReplState{
		Base:          s.gen,
		Cur:           s.cur,
		Durable:       s.durableLocked(),
		Appended:      s.walBytes,
		RetainedSize:  s.retBytes,
		RetainedEpoch: s.retEpoch,
	}
}

// ReadWALChunk reads up to max bytes of wal-<gen> starting at byte offset
// off, returning the chunk, the generation's shippable limit, and the
// current generation. An empty chunk with durable == off means the reader
// is caught up on this generation (and should advance when gen < cur).
// ErrReplReset means the position cannot be served and the follower must
// bootstrap the shard afresh.
//
// WAL files are append-only while the store is open — bytes below the
// durable watermark never change, and superseded generations are deleted
// whole — so the file read happens outside the store lock.
func (s *Store) ReadWALChunk(gen uint64, off int64, max int) (data []byte, durable int64, cur uint64, err error) {
	s.mu.Lock()
	base := s.gen
	cur = s.cur
	curDurable := s.durableLocked()
	s.mu.Unlock()
	if gen < base || gen > cur || off < headerLen {
		return nil, 0, cur, ErrReplReset
	}
	if gen == cur {
		durable = curDurable
	} else {
		st, serr := os.Stat(s.path(WALName(gen)))
		if serr != nil {
			// Deleted by a racing Commit: the generation is compacted away.
			return nil, 0, cur, ErrReplReset
		}
		durable = st.Size()
	}
	if off > durable {
		return nil, 0, cur, ErrReplReset
	}
	if off == durable || max <= 0 {
		return nil, durable, cur, nil
	}
	n := durable - off
	if int64(max) < n {
		n = int64(max)
	}
	f, err := os.Open(s.path(WALName(gen)))
	if err != nil {
		return nil, 0, cur, ErrReplReset
	}
	defer f.Close()
	data = make([]byte, n)
	if _, err := f.ReadAt(data, off); err != nil {
		return nil, 0, cur, ErrReplReset
	}
	return data, durable, cur, nil
}

// ReadRetainedChunk reads up to max bytes of the retained log at byte
// offset off. It returns the log's current size and rewrite epoch; when
// the caller's epoch does not match, the bytes it mirrored are stale
// (RewriteRetained replaced the file) and it must restart the retained
// mirror from HeaderSize. The read runs under the store lock so it cannot
// race the rewrite's rename swap.
func (s *Store) ReadRetainedChunk(off int64, max int) (data []byte, size int64, epoch uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, epoch = s.retBytes, s.retEpoch
	if off < headerLen || off >= size || max <= 0 {
		return nil, size, epoch, nil
	}
	n := size - off
	if int64(max) < n {
		n = int64(max)
	}
	f, ferr := os.Open(s.path(RetainedName))
	if ferr != nil {
		return nil, size, epoch, ferr
	}
	defer f.Close()
	data = make([]byte, n)
	if _, rerr := f.ReadAt(data, off); rerr != nil {
		return nil, size, epoch, rerr
	}
	return data, size, epoch, nil
}

// BootstrapData captures a consistent bootstrap image for a follower: the
// committed base generation, its snapshot bytes (nil when nothing was ever
// committed), and the whole retained log with its epoch. It runs under the
// store lock, which serializes it against Commit's manifest move and
// generation sweep, so the three pieces always agree. After applying it,
// the follower resumes WAL mirroring at generation base, offset
// HeaderSize.
func (s *Store) BootstrapData() (base uint64, snapshot, retained []byte, epoch uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base = s.gen
	snapshot, err = os.ReadFile(s.path(SnapName(base)))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return 0, nil, nil, 0, err
		}
		snapshot = nil
	}
	retained, err = os.ReadFile(s.path(RetainedName))
	if err != nil {
		return 0, nil, nil, 0, err
	}
	return base, snapshot, retained, s.retEpoch, nil
}

// WriteManifestFile writes a shard MANIFEST committing generation gen into
// dir. It is exported for the replication follower, which materializes a
// bootstrap image into an on-disk layout that Open recovers identically to
// the primary's own directory.
func WriteManifestFile(dir string, gen uint64) error {
	data, err := json.Marshal(manifest{Version: manifestVersion, Gen: gen})
	if err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(dir, ManifestName), data)
}

// ReadManifestGen returns the generation committed by dir's MANIFEST, or 0
// with os.ErrNotExist when none was ever written.
func ReadManifestGen(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return 0, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("journal: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion || m.Gen < 1 {
		return 0, fmt.Errorf("journal: bad manifest (version %d, gen %d)", m.Version, m.Gen)
	}
	return m.Gen, nil
}

// WriteFileAtomic replaces path with data via temp file + fsync + rename,
// so readers observe either the old content or the new, never a torn mix.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
