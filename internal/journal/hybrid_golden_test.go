package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// hybridGoldenOps is one op of every hybrid learning-plane type with fixed
// contents, plus a feature-carrying submit. Their encoded form is pinned by
// testdata/golden_hybrid.wal: the hybrid op codec must decode it
// byte-identically forever (the base op set keeps its own fixture,
// golden.wal, untouched — the hybrid ops are additive).
func hybridGoldenOps() []Op {
	return []Op{
		{T: OpSubmit, At: 1442750500000000000, Task: 9,
			Records: []string{"point-1", "point-2"}, Classes: 2, Quorum: 3, Priority: 2,
			Features: [][]float64{{0.25, -1.5, 3.75}, {1e-9, 2.5, -0.125}}},
		{T: OpAutoFinal, At: 1442750501000000000, Task: 9, Labels: []int{1, 0}},
		{T: OpRepri, At: 1442750502000000000, Task: 10, Priority: 4},
	}
}

// TestGoldenHybridWAL pins the hybrid op encodings: the checked-in fixture
// must decode to exactly the golden ops, and re-encoding the golden ops
// must reproduce the fixture byte for byte. Failing here means the hybrid
// op format changed — that requires a new op type, not a fixture update.
func TestGoldenHybridWAL(t *testing.T) {
	path := filepath.Join("testdata", "golden_hybrid.wal")
	want := encodeWAL(t, hybridGoldenOps())
	if *update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden_hybrid.wal drifted from the current encoding:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if ops := scanOps(t, got); !reflect.DeepEqual(ops, hybridGoldenOps()) {
		t.Fatalf("golden_hybrid.wal decoded to %+v", ops)
	}
}

// Feature vectors must survive the encode/decode round trip bit-exactly:
// replay determinism depends on it. Exercise values that stress float
// formatting (subnormals, negative zero is excluded — JSON canonicalizes
// -0 to -0 which still round-trips — powers of two, long decimals).
func TestFeatureRoundTripExact(t *testing.T) {
	in := Op{T: OpSubmit, Task: 1, Records: []string{"r"}, Classes: 2, Quorum: 1,
		Features: [][]float64{{0.1, 1.0 / 3.0, 5e-324, 1.7976931348623157e308, -0.0, 42}}}
	p, err := EncodeOp(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeOp(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("feature round trip changed op:\n in %+v\nout %+v", in, out)
	}
	p2, err := EncodeOp(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, p2) {
		t.Fatalf("re-encoding decoded op changed bytes:\n %q\n %q", p, p2)
	}
}
