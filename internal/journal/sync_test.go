package journal

import (
	"testing"
	"time"

	"github.com/clamshell/clamshell/internal/server/servertest"
)

// Group commit — the default fsync policy the fabric opens stores with —
// must make every acknowledged op durable within one ticker interval
// without issuing one fsync per op: appends mark the wal dirty, the ticker
// batches the sync, and a reopened store recovers everything that was
// acknowledged.
func TestGroupCommitDurability(t *testing.T) {
	t.Cleanup(servertest.VerifyNone(t))
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if mode, err := ParseSyncMode(""); err != nil || mode != SyncGroup {
		t.Fatalf("default fsync mode = %v, %v; want group", mode, err)
	}
	st.SetSync(SyncGroup, time.Millisecond)

	const ops = 100
	for i := 1; i <= ops; i++ {
		if err := st.Append(Op{T: OpJoin, Worker: i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// The batch drains within a few ticks, not one fsync per op.
	deadline := time.Now().Add(2 * time.Second)
	for st.SyncPending() {
		if time.Now().After(deadline) {
			t.Fatal("group commit never synced the pending batch")
		}
		time.Sleep(time.Millisecond)
	}
	if n := st.WALSyncs(); n == 0 || n >= ops {
		t.Fatalf("group mode issued %d fsyncs for %d ops; want batched (0 < n < ops)", n, ops)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(rec.Ops) != ops {
		t.Fatalf("recovered %d ops, want %d", len(rec.Ops), ops)
	}
	for i, op := range rec.Ops {
		if op.T != OpJoin || op.Worker != i+1 {
			t.Fatalf("op %d recovered as %+v", i, op)
		}
	}
}

// Commit mode fsyncs before Append returns: nothing is ever pending and
// every op pays a sync.
func TestCommitModeSyncsEveryAppend(t *testing.T) {
	st, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetSync(SyncCommit, 0)
	for i := 1; i <= 10; i++ {
		if err := st.Append(Op{T: OpJoin, Worker: i}); err != nil {
			t.Fatal(err)
		}
		if st.SyncPending() {
			t.Fatal("commit mode left a pending batch")
		}
		if n := st.WALSyncs(); n != uint64(i) {
			t.Fatalf("after %d ops: %d fsyncs, want one per op", i, n)
		}
	}
}

// Off mode never syncs on the append path (rotation and commit still do) —
// the historical zero-value behavior.
func TestOffModeNeverSyncsOnAppend(t *testing.T) {
	st, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetSync(SyncOff, 0)
	for i := 1; i <= 10; i++ {
		if err := st.Append(Op{T: OpJoin, Worker: i}); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.WALSyncs(); n != 0 {
		t.Fatalf("off mode issued %d append-path fsyncs", n)
	}
}

// Switching policies stops the previous group ticker and flushes its
// pending batch, so no acknowledged op is stranded un-synced.
func TestSetSyncSwitchFlushesPending(t *testing.T) {
	st, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetSync(SyncGroup, time.Hour) // a tick that will never fire
	if err := st.Append(Op{T: OpJoin, Worker: 1}); err != nil {
		t.Fatal(err)
	}
	if !st.SyncPending() {
		t.Fatal("append did not mark the wal dirty in group mode")
	}
	st.SetSync(SyncOff, 0)
	if st.SyncPending() {
		t.Fatal("switching policies stranded a pending batch")
	}
	if st.WALSyncs() == 0 {
		t.Fatal("pending batch was dropped instead of flushed")
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncMode
		ok   bool
	}{
		{"", SyncGroup, true},
		{"group", SyncGroup, true},
		{"commit", SyncCommit, true},
		{"off", SyncOff, true},
		{"always", SyncOff, false},
	} {
		got, err := ParseSyncMode(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}
