package journal

import (
	"bytes"
	"encoding/binary"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/clamshell/clamshell/internal/server/servertest"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenOps is one op of every type with fixed contents. The encoded form
// is pinned by testdata/golden.wal: the current format version must decode
// it byte-identically forever.
func goldenOps() []Op {
	return []Op{
		{T: OpSubmit, At: 1442750400000000000, Task: 1,
			Records: []string{"label this", "and this"}, Classes: 3, Quorum: 2, Priority: 1},
		{T: OpJoin, At: 1442750401000000000, Worker: 1, Name: "worker-a"},
		{T: OpAssign, At: 1442750402000000000, Task: 1, Worker: 1},
		{T: OpAnswer, At: 1442750403000000000, Task: 1, Worker: 1, Labels: []int{0, 2}, Pay: 40000},
		{T: OpAnswer, At: 1442750404000000000, Task: 1, Worker: 2, Terminated: true, Pay: 40000},
		{T: OpWaitPay, At: 1442750405000000000, Worker: 1, Pay: 2500},
		{T: OpRetire, At: 1442750406000000000, Worker: 2},
		{T: OpLeave, At: 1442750407000000000, Worker: 2, Reason: "retire"},
	}
}

func encodeWAL(t *testing.T, ops []Op) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteHeader(&buf, MagicWAL); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		p, err := EncodeOp(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := AppendRecord(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func scanOps(t *testing.T, data []byte) []Op {
	t.Helper()
	sc, err := NewScanner(bytes.NewReader(data), MagicWAL)
	if err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for {
		p, err := sc.Scan()
		if err == io.EOF {
			return ops
		}
		if err != nil {
			t.Fatalf("scan after %d ops: %v", len(ops), err)
		}
		op, err := DecodeOp(p)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
}

// TestGoldenWAL pins the journal wire format: the checked-in fixture must
// decode to exactly the golden ops, and re-encoding the golden ops must
// reproduce the fixture byte for byte. If this test fails the format
// changed — that requires a new magic version, not a fixture update.
func TestGoldenWAL(t *testing.T) {
	path := filepath.Join("testdata", "golden.wal")
	want := encodeWAL(t, goldenOps())
	if *update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden.wal drifted from the current encoding:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if ops := scanOps(t, got); !reflect.DeepEqual(ops, goldenOps()) {
		t.Fatalf("golden.wal decoded to %+v", ops)
	}
}

// An unknown format version (wrong magic byte) must be rejected with a
// clear error, not misread.
func TestUnknownVersionRejected(t *testing.T) {
	data := encodeWAL(t, goldenOps())
	data[7] = 0x02 // bump the version byte in the magic
	if _, err := NewScanner(bytes.NewReader(data), MagicWAL); err == nil {
		t.Fatal("scanner accepted an unknown format version")
	}
	if _, err := NewScanner(bytes.NewReader(data), MagicRetained); err == nil {
		t.Fatal("scanner accepted a wal file as a retained log")
	}
}

// A length prefix beyond MaxRecord must error before allocating.
func TestOversizedLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	WriteHeader(&buf, MagicWAL)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xFFFFFFF0)
	buf.Write(hdr[:])
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()), MagicWAL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Scan(); err != ErrTooLarge {
		t.Fatalf("scan error = %v, want ErrTooLarge", err)
	}
}

// Torn tails — a record cut at any byte — must yield the intact prefix.
func TestTornTailTruncates(t *testing.T) {
	ops := goldenOps()
	full := encodeWAL(t, ops)
	sc, _ := NewScanner(bytes.NewReader(full), MagicWAL)
	var bounds []int64
	bounds = append(bounds, sc.Offset())
	for {
		if _, err := sc.Scan(); err != nil {
			break
		}
		bounds = append(bounds, sc.Offset())
	}
	if len(bounds) != len(ops)+1 {
		t.Fatalf("found %d boundaries, want %d", len(bounds), len(ops)+1)
	}
	for k := 0; k < len(ops); k++ {
		for _, cut := range []int64{bounds[k], bounds[k] + 1, (bounds[k] + bounds[k+1]) / 2, bounds[k+1] - 1} {
			got := scanTornOps(t, full[:cut])
			if !reflect.DeepEqual(got, ops[:k]) {
				t.Fatalf("cut at %d: recovered %d ops, want %d", cut, len(got), k)
			}
		}
	}
}

// scanTornOps scans a possibly-torn buffer, returning the intact prefix.
func scanTornOps(t *testing.T, data []byte) []Op {
	t.Helper()
	sc, err := NewScanner(bytes.NewReader(data), MagicWAL)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{}
	for {
		p, err := sc.Scan()
		if err != nil {
			return ops
		}
		op, err := DecodeOp(p)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
}

// TestStoreRoundTrip drives a store through the full lifecycle: append,
// rotate+commit, append more, close, reopen — the recovered state must be
// the committed snapshot plus the post-rotation op suffix plus the
// retained payloads.
func TestStoreRoundTrip(t *testing.T) {
	t.Cleanup(servertest.VerifyNone(t))
	dir := t.TempDir()
	st, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Ops) != 0 || len(rec.Retained) != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	ops := goldenOps()
	for _, op := range ops[:4] {
		if err := st.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snap := []byte(`{"live":"state"}`)
	tally := [][]byte{[]byte(`{"id":7}`), []byte(`{"id":9}`)}
	if err := st.Commit(gen, snap, tally); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[4:] {
		if err := st.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The superseded generation must be gone.
	if _, err := os.Stat(filepath.Join(dir, WALName(gen-1))); !os.IsNotExist(err) {
		t.Fatalf("wal-%d survived compaction (err=%v)", gen-1, err)
	}

	st2, rec2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !bytes.Equal(rec2.Snapshot, snap) {
		t.Fatalf("recovered snapshot %q", rec2.Snapshot)
	}
	if !reflect.DeepEqual(rec2.Ops, ops[4:]) {
		t.Fatalf("recovered ops %+v, want %+v", rec2.Ops, ops[4:])
	}
	if len(rec2.Retained) != 2 || !bytes.Equal(rec2.Retained[0], tally[0]) || !bytes.Equal(rec2.Retained[1], tally[1]) {
		t.Fatalf("recovered retained %q", rec2.Retained)
	}
	if rec2.Truncated {
		t.Fatal("clean close reported a torn tail")
	}
}

// A crash between Rotate and Commit leaves two wal generations and the old
// manifest; recovery must replay both in order.
func TestStoreRecoverAcrossUncommittedRotation(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ops := goldenOps()
	for _, op := range ops[:3] {
		st.Append(op)
	}
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	// "Crash" before Commit: append post-rotation ops, never commit.
	for _, op := range ops[3:] {
		st.Append(op)
	}
	st.Close()

	st2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Snapshot != nil {
		t.Fatalf("uncommitted rotation produced a snapshot: %q", rec.Snapshot)
	}
	if !reflect.DeepEqual(rec.Ops, ops) {
		t.Fatalf("recovered %d ops across generations, want %d", len(rec.Ops), len(ops))
	}
}

// A torn tail on disk must be truncated at recovery so subsequent appends
// extend the intact prefix.
func TestStoreTruncatesTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ops := goldenOps()
	for _, op := range ops {
		st.Append(op)
	}
	st.Close()

	walPath := filepath.Join(dir, WALName(1))
	fi, _ := os.Stat(walPath)
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Ops) != len(ops)-1 {
		t.Fatalf("recovered %d ops, want %d", len(rec.Ops), len(ops)-1)
	}
	// Appending after recovery must yield a clean log.
	if err := st2.Append(ops[len(ops)-1]); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, rec3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if rec3.Truncated || !reflect.DeepEqual(rec3.Ops, ops) {
		t.Fatalf("post-truncation append did not heal the log: truncated=%v ops=%d", rec3.Truncated, len(rec3.Ops))
	}
}
