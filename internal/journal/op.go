package journal

import (
	"encoding/json"
	"fmt"
)

// Op is one journaled shard mutation. The set mirrors the retainer-pool
// protocol's durable events; ops that only touch live worker sessions
// (assign, leave, expire) are recorded for the audit trail but have no
// effect on replay, because worker sessions never survive a restart —
// exactly as with snapshots, their in-flight assignments fall back to the
// queue.
//
// Pay deltas are journaled in raw metrics.Cost units (int64 micro-dollars)
// as computed at emission time, so replay reconstructs the ledger
// bit-exactly even if pay rates change between the run and the recovery.
type Op struct {
	T  string `json:"t"`            // op type, one of the Op* constants
	At int64  `json:"at,omitempty"` // emission time, unix nanoseconds

	Task   int    `json:"task,omitempty"`
	Worker int    `json:"worker,omitempty"`
	Name   string `json:"name,omitempty"`   // join: worker name
	Reason string `json:"reason,omitempty"` // leave: "leave" | "expire" | "retire"

	// submit: the task spec (defaults already applied). Features, when
	// present, is one vector per record; float64s survive the JSON round
	// trip exactly (encoding/json emits the shortest representation that
	// parses back to the same bits), so replay is byte-deterministic.
	Records  []string    `json:"records,omitempty"`
	Classes  int         `json:"classes,omitempty"`
	Quorum   int         `json:"quorum,omitempty"`
	Priority int         `json:"priority,omitempty"` // also: repri's new priority
	Features [][]float64 `json:"features,omitempty"`

	// answer: the label vector, the termination flag and the pay delta.
	// autofinal reuses Labels for the model-provided answer.
	Labels     []int `json:"labels,omitempty"`
	Terminated bool  `json:"terminated,omitempty"`
	Pay        int64 `json:"pay,omitempty"` // micro-dollars; also used by waitpay
}

// Op types.
const (
	OpSubmit  = "submit"  // task accepted into the queue
	OpJoin    = "join"    // worker admitted (advances the id high-water mark)
	OpAssign  = "assign"  // task handed to a worker (audit only)
	OpAnswer  = "answer"  // answer accepted or terminated; carries work pay
	OpLeave   = "leave"   // worker removed (audit only; Reason says why)
	OpRetire  = "retire"  // worker retired by maintenance (durable blocklist)
	OpWaitPay = "waitpay" // wait-pay accrual settled onto the ledger

	// Hybrid learning-plane ops. Both are decisions made off the shard lock
	// by the model plane and journaled on the owning shard, so replay
	// reconstructs the same finalization and priority state byte-exactly
	// without re-running any model.
	OpAutoFinal = "autofinal" // task finalized with a model-provided answer
	OpRepri     = "repri"     // pending task re-bucketed to a new priority
)

// EncodeOp serializes an op as a journal record payload.
func EncodeOp(op Op) ([]byte, error) {
	return json.Marshal(op)
}

// DecodeOp parses a journal record payload. An op with an empty type field
// is rejected; unknown types are preserved (forward compatibility is the
// replayer's call).
func DecodeOp(payload []byte) (Op, error) {
	var op Op
	if err := json.Unmarshal(payload, &op); err != nil {
		return op, fmt.Errorf("journal: decoding op: %w", err)
	}
	if op.T == "" {
		return op, fmt.Errorf("journal: op missing type")
	}
	return op, nil
}
