// Package journal implements the durability engine under the live routing
// fabric: an append-only, length-prefixed, checksummed op log that a shard
// writes through on every mutation, plus the per-shard Store that pairs the
// log with compacted incremental snapshots. The split mirrors how HTAP
// engines separate an update-optimized log from a scan-optimized compacted
// store: the WAL absorbs the mutation stream at O(1) per op, and periodic
// compaction folds the prefix into a snapshot of the live state (completed
// history is demoted to an append-only tally log), so recovery is
// load-latest-snapshot + replay-journal-suffix regardless of how much work
// the shard has ever processed.
//
// This file defines the record framing shared by every journal file:
//
//	[8-byte magic, once per file]
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]...
//
// A torn tail — a record cut mid-write by a crash — is detected by the
// length/checksum pair and dropped; everything before it is the durable
// prefix. Readers never trust the length field with more than MaxRecord
// bytes of allocation, so a corrupt or hostile file cannot balloon memory.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// File magics. The trailing byte is the format version: readers reject any
// other value with a clear error rather than misreading the framing.
const (
	MagicWAL      = "CLAMWAL\x01" // op log files (wal-<gen>)
	MagicRetained = "CLAMRET\x01" // retained-tally log (retained.log)
)

// MaxRecord caps a single record's payload. The length prefix of a corrupt
// file is checked against it before any allocation.
const MaxRecord = 1 << 24 // 16 MiB

const headerLen = 8 // len(MagicWAL) == len(MagicRetained)

var (
	// ErrChecksum reports a record whose payload does not match its CRC —
	// a torn write or bit rot.
	ErrChecksum = errors.New("journal: record checksum mismatch")
	// ErrTooLarge reports a length prefix above MaxRecord.
	ErrTooLarge = errors.New("journal: record length exceeds limit")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteHeader writes a file's magic. Call once on a freshly created file.
func WriteHeader(w io.Writer, magic string) error {
	_, err := io.WriteString(w, magic)
	return err
}

// AppendRecord frames and writes one payload. The frame goes out in a
// single Write so a crash tears at most one record, never interleaves two.
func AppendRecord(w io.Writer, payload []byte) error {
	if len(payload) > MaxRecord {
		return ErrTooLarge
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	_, err := w.Write(buf)
	return err
}

// Scanner iterates the records of one journal file, tracking the byte
// offset of the end of the last intact record so a torn tail can be
// truncated away before the file is appended to again.
type Scanner struct {
	r   io.Reader
	off int64 // end of the last successfully scanned record
}

// NewScanner checks the file's magic and returns a Scanner positioned at
// the first record. A wrong or unknown magic is an error: the file was
// written by an incompatible build and must not be silently misread.
func NewScanner(r io.Reader, magic string) (*Scanner, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("journal: reading file header: %w", err)
	}
	if string(hdr[:]) != magic {
		return nil, fmt.Errorf("journal: bad file magic %q, want %q (incompatible format version?)",
			hdr[:], magic)
	}
	return &Scanner{r: r, off: headerLen}, nil
}

// Scan returns the next record's payload. It returns io.EOF at a clean end
// of file; io.ErrUnexpectedEOF, ErrChecksum or ErrTooLarge mark a torn or
// corrupt tail beginning at Offset().
func (sc *Scanner) Scan() ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(sc.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxRecord {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(sc.r, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrChecksum
	}
	sc.off += 8 + int64(n)
	return payload, nil
}

// Offset returns the byte offset just past the last intact record (the
// file header counts). After a failed Scan this is the truncation point
// that removes the torn tail.
func (sc *Scanner) Offset() int64 { return sc.off }
