package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openTestStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestReplStateTracksAppends(t *testing.T) {
	s, _ := openTestStore(t)
	st := s.ReplState()
	if st.Base != 1 || st.Cur != 1 || st.Appended != HeaderSize || st.Durable != HeaderSize {
		t.Fatalf("fresh state = %+v", st)
	}
	op := Op{T: OpSubmit, Task: 1, Records: []string{"a", "b", "c"}}
	if err := s.Append(op); err != nil {
		t.Fatalf("Append: %v", err)
	}
	st = s.ReplState()
	if st.Appended <= HeaderSize {
		t.Fatalf("appended watermark did not move: %+v", st)
	}
	// SyncOff mode: everything appended is shippable.
	if st.Durable != st.Appended {
		t.Fatalf("SyncOff durable %d != appended %d", st.Durable, st.Appended)
	}
}

func TestReplDurableLagsUntilSync(t *testing.T) {
	s, _ := openTestStore(t)
	s.SetSync(SyncGroup, 0)
	// Pause the ticker race by reading immediately after an append; even if
	// the ticker fires, the invariant Durable <= Appended must hold, and an
	// explicit Sync must close the gap.
	if err := s.Append(Op{T: OpSubmit, Task: 2, Records: []string{"a"}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	st := s.ReplState()
	if st.Durable > st.Appended {
		t.Fatalf("durable %d > appended %d", st.Durable, st.Appended)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st = s.ReplState()
	if st.Durable != st.Appended {
		t.Fatalf("after Sync durable %d != appended %d", st.Durable, st.Appended)
	}
}

func TestReadWALChunkMirrorsFile(t *testing.T) {
	s, dir := openTestStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Append(Op{T: OpJoin, Worker: i + 1, Name: "w"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := s.ReplState()
	var mirror bytes.Buffer
	off := int64(HeaderSize)
	for off < st.Durable {
		data, durable, cur, err := s.ReadWALChunk(st.Cur, off, 32)
		if err != nil {
			t.Fatalf("ReadWALChunk(%d): %v", off, err)
		}
		if cur != st.Cur || durable != st.Durable {
			t.Fatalf("watermarks moved: %d/%d", cur, durable)
		}
		if len(data) == 0 {
			t.Fatalf("empty chunk below durable at %d", off)
		}
		mirror.Write(data)
		off += int64(len(data))
	}
	disk, err := os.ReadFile(filepath.Join(dir, WALName(st.Cur)))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(disk[HeaderSize:], mirror.Bytes()) {
		t.Fatal("mirrored bytes differ from the wal file")
	}
	// Caught up: empty chunk, no error.
	data, durable, _, err := s.ReadWALChunk(st.Cur, off, 32)
	if err != nil || len(data) != 0 || durable != off {
		t.Fatalf("caught-up read = (%d bytes, durable %d, %v)", len(data), durable, err)
	}
}

func TestReadWALChunkResetSentinels(t *testing.T) {
	s, _ := openTestStore(t)
	if _, _, _, err := s.ReadWALChunk(99, HeaderSize, 64); !errors.Is(err, ErrReplReset) {
		t.Fatalf("future gen: err = %v, want ErrReplReset", err)
	}
	if _, _, _, err := s.ReadWALChunk(1, 1<<30, 64); !errors.Is(err, ErrReplReset) {
		t.Fatalf("offset past durable: err = %v, want ErrReplReset", err)
	}
	if _, _, _, err := s.ReadWALChunk(1, 0, 64); !errors.Is(err, ErrReplReset) {
		t.Fatalf("offset inside header: err = %v, want ErrReplReset", err)
	}
	// Rotate + Commit retire generation 1; reading it must demand bootstrap.
	gen, err := s.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := s.Commit(gen, []byte(`{"v":1}`), nil); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if _, _, _, err := s.ReadWALChunk(1, HeaderSize, 64); !errors.Is(err, ErrReplReset) {
		t.Fatalf("compacted gen: err = %v, want ErrReplReset", err)
	}
}

func TestReadWALChunkAcrossRotation(t *testing.T) {
	s, _ := openTestStore(t)
	if err := s.Append(Op{T: OpJoin, Worker: 1, Name: "w"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	preSt := s.ReplState()
	if _, err := s.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := s.Append(Op{T: OpJoin, Worker: 2, Name: "x"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Old generation still readable until commit; durable = full file size.
	data, durable, cur, err := s.ReadWALChunk(preSt.Cur, HeaderSize, 1<<20)
	if err != nil {
		t.Fatalf("ReadWALChunk(old gen): %v", err)
	}
	if cur != preSt.Cur+1 {
		t.Fatalf("cur = %d, want %d", cur, preSt.Cur+1)
	}
	if int64(len(data))+HeaderSize != durable || durable != preSt.Appended {
		t.Fatalf("old gen chunk %d bytes, durable %d, want %d", len(data), durable, preSt.Appended)
	}
}

func TestRetainedChunkAndEpoch(t *testing.T) {
	s, _ := openTestStore(t)
	if err := s.AppendRetained([][]byte{[]byte("tally-1"), []byte("tally-2")}); err != nil {
		t.Fatalf("AppendRetained: %v", err)
	}
	st := s.ReplState()
	if st.RetainedSize <= HeaderSize || st.RetainedEpoch != 0 {
		t.Fatalf("state = %+v", st)
	}
	data, size, epoch, err := s.ReadRetainedChunk(HeaderSize, 1<<20)
	if err != nil {
		t.Fatalf("ReadRetainedChunk: %v", err)
	}
	if int64(len(data))+HeaderSize != size || epoch != 0 {
		t.Fatalf("chunk %d bytes, size %d, epoch %d", len(data), size, epoch)
	}
	if err := s.RewriteRetained([][]byte{[]byte("tally-2b")}); err != nil {
		t.Fatalf("RewriteRetained: %v", err)
	}
	_, size2, epoch2, err := s.ReadRetainedChunk(HeaderSize, 1<<20)
	if err != nil {
		t.Fatalf("ReadRetainedChunk after rewrite: %v", err)
	}
	if epoch2 != 1 {
		t.Fatalf("epoch = %d, want 1 after rewrite", epoch2)
	}
	if size2 >= size {
		t.Fatalf("rewrite did not shrink: %d -> %d", size, size2)
	}
}

func TestBootstrapDataRoundTrip(t *testing.T) {
	s, dir := openTestStore(t)
	if err := s.Append(Op{T: OpJoin, Worker: 1, Name: "w"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.AppendRetained([][]byte{[]byte("tally")}); err != nil {
		t.Fatalf("AppendRetained: %v", err)
	}
	gen, err := s.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	snap := []byte(`{"workers":[1]}`)
	if err := s.Commit(gen, snap, nil); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := s.Append(Op{T: OpJoin, Worker: 2, Name: "x"}); err != nil {
		t.Fatalf("Append: %v", err)
	}

	base, snapGot, retained, _, err := s.BootstrapData()
	if err != nil {
		t.Fatalf("BootstrapData: %v", err)
	}
	if base != gen || !bytes.Equal(snapGot, snap) {
		t.Fatalf("base=%d snap=%q", base, snapGot)
	}

	// Materialize the bootstrap into a follower directory plus the current
	// wal mirrored chunk-wise; Open there must recover the same ops as a
	// fresh Open of the primary's own directory.
	fdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(fdir, RetainedName), retained, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(filepath.Join(fdir, SnapName(base)), snapGot); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifestFile(fdir, base); err != nil {
		t.Fatal(err)
	}
	st := s.ReplState()
	wal := []byte(MagicWAL)
	for off := int64(HeaderSize); off < st.Durable; {
		data, _, _, err := s.ReadWALChunk(st.Cur, off, 16)
		if err != nil {
			t.Fatalf("ReadWALChunk: %v", err)
		}
		wal = append(wal, data...)
		off += int64(len(data))
	}
	if err := os.WriteFile(filepath.Join(fdir, WALName(base)), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p, prec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen primary: %v", err)
	}
	defer p.Close()
	f, frec, err := Open(fdir)
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	defer f.Close()
	if !bytes.Equal(prec.Snapshot, frec.Snapshot) {
		t.Fatal("snapshots differ")
	}
	if len(prec.Ops) != len(frec.Ops) {
		t.Fatalf("ops %d != %d", len(prec.Ops), len(frec.Ops))
	}
	if len(prec.Retained) != len(frec.Retained) {
		t.Fatalf("retained %d != %d", len(prec.Retained), len(frec.Retained))
	}
	if gm, err := ReadManifestGen(fdir); err != nil || gm != base {
		t.Fatalf("ReadManifestGen = %d, %v", gm, err)
	}
}
