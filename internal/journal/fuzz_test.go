package journal

import (
	"bytes"
	"io"
	"testing"
)

// FuzzScanner feeds arbitrary bytes to the record reader: truncated,
// bit-flipped and oversized-length inputs must error cleanly — never
// panic, never trust a length prefix with an allocation beyond MaxRecord.
func FuzzScanner(f *testing.F) {
	var seed bytes.Buffer
	WriteHeader(&seed, MagicWAL)
	for _, op := range []Op{
		{T: OpSubmit, Task: 1, Records: []string{"r"}, Classes: 2, Quorum: 1},
		{T: OpAnswer, Task: 1, Worker: 2, Labels: []int{0}, Pay: 20000},
	} {
		p, _ := EncodeOp(op)
		AppendRecord(&seed, p)
	}
	full := seed.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn tail
	f.Add([]byte(MagicWAL))
	f.Add([]byte("CLAMWAL\x02garbage"))
	flipped := append([]byte(nil), full...)
	flipped[len(full)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte(MagicWAL + "\xf0\xff\xff\xff\x00\x00\x00\x00")) // oversized length

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := NewScanner(bytes.NewReader(data), MagicWAL)
		if err != nil {
			return
		}
		records := 0
		for {
			p, err := sc.Scan()
			if err == io.EOF {
				break
			}
			if err != nil {
				// A corrupt tail must leave the offset at a boundary within
				// the input.
				if off := sc.Offset(); off < int64(headerLen) || off > int64(len(data)) {
					t.Fatalf("offset %d outside input of %d bytes", off, len(data))
				}
				break
			}
			DecodeOp(p) // must not panic on any checksummed payload
			records++
			if records > len(data) {
				t.Fatalf("scanned %d records from %d bytes", records, len(data))
			}
		}
	})
}
