package journal

import (
	"bytes"
	"testing"
)

// RewriteRetained swaps a compacted retained log in by rename: the record
// count resets to the new payload set, the append handle follows the new
// file, and a reopen recovers exactly rewrite-then-append order.
func TestRewriteRetained(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	if err := st.AppendRetained([][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	if got := st.RetainedRecords(); got != 3 {
		t.Fatalf("RetainedRecords = %d, want 3", got)
	}

	if err := st.RewriteRetained([][]byte{[]byte("b2"), []byte("c2")}); err != nil {
		t.Fatal(err)
	}
	if got := st.RetainedRecords(); got != 2 {
		t.Fatalf("RetainedRecords after rewrite = %d, want 2", got)
	}

	// The append handle must follow the swapped file.
	if err := st.AppendRetained([][]byte{[]byte("d")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	want := [][]byte{[]byte("b2"), []byte("c2"), []byte("d")}
	if len(rec.Retained) != len(want) {
		t.Fatalf("recovered %d retained records, want %d", len(rec.Retained), len(want))
	}
	for i, p := range want {
		if !bytes.Equal(rec.Retained[i], p) {
			t.Errorf("retained[%d] = %q, want %q", i, rec.Retained[i], p)
		}
	}
	if got := st2.RetainedRecords(); got != 3 {
		t.Fatalf("RetainedRecords after reopen = %d, want 3", got)
	}
}
