package faultwire

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeDialer returns a dialer whose server halves land on srv.
func pipeDialer() (dial func(string) (net.Conn, error), srv chan net.Conn) {
	srv = make(chan net.Conn, 8)
	dial = func(string) (net.Conn, error) {
		a, b := net.Pipe()
		srv <- b
		return a, nil
	}
	return dial, srv
}

func TestCleanPassThrough(t *testing.T) {
	dial, srv := pipeDialer()
	n := New(Config{Seed: 1}, dial)
	c, err := n.Dial("x")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	peer := <-srv
	defer peer.Close()
	go func() { c.Write([]byte("hello")) }()
	buf := make([]byte, 5)
	if _, err := io.ReadFull(peer, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
	if st := n.Stats(); st.Drops+st.Torn+st.Dups != 0 || st.Dials != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestDropKillsConnection(t *testing.T) {
	dial, srv := pipeDialer()
	n := New(Config{Seed: 2, DropProb: 1}, dial)
	c, _ := n.Dial("x")
	peer := <-srv
	defer peer.Close()
	if _, err := c.Write([]byte("doomed")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("write err = %v, want ErrInjectedDrop", err)
	}
	// The peer sees a clean close with zero bytes delivered.
	if nr, err := peer.Read(make([]byte, 8)); nr != 0 || err == nil {
		t.Fatalf("peer read = %d, %v; want 0, closed", nr, err)
	}
}

func TestTornWriteDeliversStrictPrefix(t *testing.T) {
	dial, srv := pipeDialer()
	n := New(Config{Seed: 3, TornProb: 1}, dial)
	c, _ := n.Dial("x")
	peer := <-srv
	defer peer.Close()
	msg := []byte("0123456789")
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(msg))
		nr, _ := io.ReadFull(peer, buf)
		got <- buf[:nr]
	}()
	nw, err := c.Write(msg)
	if !errors.Is(err, ErrInjectedTorn) {
		t.Fatalf("write err = %v, want ErrInjectedTorn", err)
	}
	if nw <= 0 || nw >= len(msg) {
		t.Fatalf("torn write delivered %d of %d bytes; want strict prefix", nw, len(msg))
	}
	b := <-got
	if string(b) != string(msg[:nw]) {
		t.Fatalf("peer got %q, want %q", b, msg[:nw])
	}
}

func TestDuplicateDelivery(t *testing.T) {
	dial, srv := pipeDialer()
	n := New(Config{Seed: 4, DupProb: 1}, dial)
	c, _ := n.Dial("x")
	defer c.Close()
	peer := <-srv
	defer peer.Close()
	go c.Write([]byte("ab"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "abab" {
		t.Fatalf("peer got %q, want duplicated %q", buf, "abab")
	}
}

func TestPartitionKillsAndRefuses(t *testing.T) {
	dial, srv := pipeDialer()
	n := New(Config{Seed: 5}, dial)
	c, _ := n.Dial("x")
	peer := <-srv
	defer peer.Close()
	n.Partition()
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("live conn survived partition")
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded across partition")
	}
	if _, err := n.Dial("x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial err = %v, want ErrPartitioned", err)
	}
	n.Heal()
	c2, err := n.Dial("x")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Close()
	(<-srv).Close()
	if st := n.Stats(); st.DialsRefused != 1 || st.Dials != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func() []string {
		dial, srv := pipeDialer()
		go func() {
			for peer := range srv {
				go io.Copy(io.Discard, peer)
			}
		}()
		n := New(Config{Seed: 42, DropProb: 0.3, TornProb: 0.3, DupProb: 0.3}, dial)
		var seq []string
		for i := 0; i < 32; i++ {
			c, err := n.Dial("x")
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			_, err = c.Write([]byte("0123456789"))
			switch {
			case errors.Is(err, ErrInjectedDrop):
				seq = append(seq, "drop")
			case errors.Is(err, ErrInjectedTorn):
				seq = append(seq, "torn")
			case err == nil:
				seq = append(seq, "ok")
			default:
				t.Fatalf("write: %v", err)
			}
			c.Close()
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a, b)
		}
	}
	var faults int
	for _, s := range a {
		if s != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("seed 42 injected no faults across 32 writes")
	}
}

func TestDelayHoldsWrite(t *testing.T) {
	dial, srv := pipeDialer()
	n := New(Config{Seed: 6, DelayProb: 1, MaxDelay: 30 * time.Millisecond}, dial)
	c, _ := n.Dial("x")
	defer c.Close()
	peer := <-srv
	defer peer.Close()
	go func() {
		buf := make([]byte, 1)
		io.ReadFull(peer, buf)
	}()
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if time.Since(start) == 0 {
		t.Fatal("no delay observed")
	}
	if st := n.Stats(); st.Delays == 0 {
		t.Fatal("delay not counted")
	}
}
