// Package faultwire is an injectable chaos transport for fabric tests: a
// dialer that wraps real connections and injects delays, dropped
// connections, torn writes, duplicated frames, and full partitions, all
// from a seeded RNG so every failure schedule is reproducible from the
// test log. Production code never imports this package; the fabric's
// remote shards and the replication follower accept a dial function, and
// chaos tests hand them Network.Dial.
package faultwire

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedDrop is returned from a Write the network decided to kill.
var ErrInjectedDrop = errors.New("faultwire: injected connection drop")

// ErrInjectedTorn is returned from a Write cut short mid-frame.
var ErrInjectedTorn = errors.New("faultwire: injected torn write")

// ErrPartitioned is returned from Dial while the network is partitioned.
var ErrPartitioned = errors.New("faultwire: network partitioned")

// Config sets the per-write fault probabilities. Probabilities are
// evaluated in order drop, torn, dup — at most one structural fault fires
// per write — and a delay may additionally precede any outcome.
type Config struct {
	// Seed feeds the deterministic RNG; the same seed over the same op
	// sequence replays the same fault schedule.
	Seed uint64
	// DelayProb is the chance a write is held for up to MaxDelay first.
	DelayProb float64
	// MaxDelay bounds injected latency (uniform in (0, MaxDelay]).
	MaxDelay time.Duration
	// DropProb is the chance a write is discarded and the conn killed,
	// simulating a connection reset with the frame lost in flight.
	DropProb float64
	// TornProb is the chance only a strict prefix of the write lands
	// before the conn dies — a torn frame for the peer's CRC to catch.
	TornProb float64
	// DupProb is the chance the write's bytes are delivered twice,
	// simulating replayed delivery the protocol must treat idempotently.
	DupProb float64
}

// Stats counts faults the network has injected so far.
type Stats struct {
	Delays, Drops, Torn, Dups uint64
	Dials, DialsRefused       uint64
}

// Network hands out fault-injected connections over a real dialer.
type Network struct {
	cfg  Config
	dial func(addr string) (net.Conn, error)

	mu          sync.Mutex
	rng         *rand.Rand
	conns       map[*conn]struct{}
	partitioned bool
	stats       Stats
}

// New builds a Network over dial (nil means net.Dial "tcp").
func New(cfg Config, dial func(addr string) (net.Conn, error)) *Network {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return &Network{
		cfg:   cfg,
		dial:  dial,
		rng:   rand.New(rand.NewSource(int64(cfg.Seed))),
		conns: make(map[*conn]struct{}),
	}
}

// Dial opens a fault-injected connection, or refuses if partitioned.
func (n *Network) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	if n.partitioned {
		n.stats.DialsRefused++
		n.mu.Unlock()
		return nil, ErrPartitioned
	}
	n.mu.Unlock()
	inner, err := n.dial(addr)
	if err != nil {
		return nil, err
	}
	c := &conn{Conn: inner, net: n}
	n.mu.Lock()
	// A partition that raced the dial wins: the conn never becomes usable.
	if n.partitioned {
		n.stats.DialsRefused++
		n.mu.Unlock()
		inner.Close()
		return nil, ErrPartitioned
	}
	n.conns[c] = struct{}{}
	n.stats.Dials++
	n.mu.Unlock()
	return c, nil
}

// Partition cuts the network: every live connection is killed and new
// dials fail until Heal.
func (n *Network) Partition() {
	n.mu.Lock()
	n.partitioned = true
	victims := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Heal reopens the network for new dials (killed conns stay dead).
func (n *Network) Heal() {
	n.mu.Lock()
	n.partitioned = false
	n.mu.Unlock()
}

// Stats returns a snapshot of injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// verdict is one decided fault, computed under the lock, executed outside.
type verdict struct {
	delay time.Duration
	drop  bool
	torn  int // bytes to deliver before the cut; 0 = not torn
	dup   bool
}

// decide rolls the seeded dice for one write of n bytes. Pure state
// mutation under mu; all sleeping and I/O happen in the caller.
func (n *Network) decide(size int) verdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	var v verdict
	if n.cfg.DelayProb > 0 && n.rng.Float64() < n.cfg.DelayProb && n.cfg.MaxDelay > 0 {
		v.delay = time.Duration(1 + n.rng.Int63n(int64(n.cfg.MaxDelay)))
		n.stats.Delays++
	}
	switch {
	case n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb:
		v.drop = true
		n.stats.Drops++
	case size > 1 && n.cfg.TornProb > 0 && n.rng.Float64() < n.cfg.TornProb:
		v.torn = 1 + n.rng.Intn(size-1)
		n.stats.Torn++
	case n.cfg.DupProb > 0 && n.rng.Float64() < n.cfg.DupProb:
		v.dup = true
		n.stats.Dups++
	}
	return v
}

func (n *Network) forget(c *conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// conn injects the network's faults into each Write. Reads pass through:
// every stream corruption this package models is injected at the sender.
type conn struct {
	net.Conn
	net       *Network
	closeOnce sync.Once
}

func (c *conn) Write(p []byte) (int, error) {
	v := c.net.decide(len(p))
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	switch {
	case v.drop:
		c.Close()
		return 0, ErrInjectedDrop
	case v.torn > 0:
		wrote, _ := c.Conn.Write(p[:v.torn])
		c.Close()
		return wrote, ErrInjectedTorn
	case v.dup:
		wrote, err := c.Conn.Write(p)
		if err != nil {
			return wrote, err
		}
		if _, err := c.Conn.Write(p); err != nil {
			return wrote, err
		}
		return wrote, nil
	default:
		return c.Conn.Write(p)
	}
}

func (c *conn) Close() error {
	c.net.forget(c)
	var err error
	c.closeOnce.Do(func() { err = c.Conn.Close() })
	return err
}
