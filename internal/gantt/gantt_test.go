package gantt

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/clamshell/clamshell/internal/metrics"
)

func sampleTrace() *metrics.Trace {
	base := time.Date(2015, 9, 20, 0, 0, 0, 0, time.UTC)
	var tr metrics.Trace
	tr.Record(metrics.AssignmentEvent{
		Assignment: 1, Task: 1, Worker: 1, Batch: 0,
		Start: base, End: base.Add(10 * time.Second),
	})
	tr.Record(metrics.AssignmentEvent{
		Assignment: 2, Task: 2, Worker: 2, Batch: 0,
		Start: base, End: base.Add(30 * time.Second), Terminated: true,
	})
	tr.Record(metrics.AssignmentEvent{
		Assignment: 3, Task: 2, Worker: 1, Batch: 1,
		Start: base.Add(12 * time.Second), End: base.Add(20 * time.Second),
	})
	return &tr
}

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sampleTrace(), Options{Width: 60}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 assignments, 2 workers") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Fatal("no completed segments drawn")
	}
	if !strings.Contains(out, "-") {
		t.Fatal("no terminated segments drawn")
	}
	if !strings.Contains(out, "w1") || !strings.Contains(out, "w2") {
		t.Fatalf("worker rows missing:\n%s", out)
	}
	// Worker rows sorted busiest-first: w1 (2 events) before w2.
	if strings.Index(out, "w1") > strings.Index(out, "w2") {
		t.Fatal("rows not sorted by activity")
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, &metrics.Trace{}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty trace") {
		t.Fatal("empty trace not reported")
	}
}

func TestRenderMaxWorkers(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sampleTrace(), Options{Width: 40, MaxWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "w2") {
		t.Fatalf("MaxWorkers not applied:\n%s", out)
	}
}

func TestRenderZeroWidthDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, sampleTrace(), Options{}); err != nil {
		t.Fatal(err)
	}
	if len(buf.String()) == 0 {
		t.Fatal("no output")
	}
}
