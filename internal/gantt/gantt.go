// Package gantt renders per-assignment traces as ASCII Gantt charts — a
// terminal rendition of the paper's Figure 13, where each row is a worker,
// each segment an assignment, completed work drawn solid and terminated
// (straggler-mitigated) work drawn hollow.
package gantt

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/clamshell/clamshell/internal/metrics"
	"github.com/clamshell/clamshell/internal/worker"
)

// Options configures rendering.
type Options struct {
	// Width is the chart width in columns (default 100).
	Width int
	// MaxWorkers caps the number of worker rows (busiest first; 0 = all).
	MaxWorkers int
}

// Render writes an ASCII Gantt of the trace. Completed assignments are
// drawn with '=', terminated ones with '-', batch boundaries with '|' on
// the axis.
func Render(w io.Writer, tr *metrics.Trace, opts Options) error {
	if opts.Width <= 10 {
		opts.Width = 100
	}
	if len(tr.Events) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}

	start := tr.Events[0].Start
	end := tr.Events[0].End
	for _, e := range tr.Events {
		if e.Start.Before(start) {
			start = e.Start
		}
		if e.End.After(end) {
			end = e.End
		}
	}
	span := end.Sub(start)
	if span <= 0 {
		span = time.Second
	}
	col := func(t time.Time) int {
		c := int(float64(opts.Width-1) * float64(t.Sub(start)) / float64(span))
		if c < 0 {
			c = 0
		}
		if c >= opts.Width {
			c = opts.Width - 1
		}
		return c
	}

	byWorker := tr.ByWorker()
	ids := make([]worker.ID, 0, len(byWorker))
	for id := range byWorker {
		ids = append(ids, id)
	}
	// Busiest workers first, stable by id.
	sort.Slice(ids, func(i, j int) bool {
		a, b := len(byWorker[ids[i]]), len(byWorker[ids[j]])
		if a != b {
			return a > b
		}
		return ids[i] < ids[j]
	})
	if opts.MaxWorkers > 0 && len(ids) > opts.MaxWorkers {
		ids = ids[:opts.MaxWorkers]
	}

	if _, err := fmt.Fprintf(w, "trace: %d assignments, %d workers, span %v ('=' completed, '-' terminated)\n",
		len(tr.Events), len(byWorker), span.Round(time.Millisecond)); err != nil {
		return err
	}
	for _, id := range ids {
		row := make([]byte, opts.Width)
		for i := range row {
			row[i] = ' '
		}
		for _, e := range byWorker[id] {
			lo, hi := col(e.Start), col(e.End)
			fill := byte('=')
			if e.Terminated {
				fill = '-'
			}
			for c := lo; c <= hi; c++ {
				row[c] = fill
			}
		}
		if _, err := fmt.Fprintf(w, "w%-4d |%s|\n", id, string(row)); err != nil {
			return err
		}
	}

	// Axis with batch-start markers.
	axis := make([]byte, opts.Width)
	for i := range axis {
		axis[i] = '.'
	}
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if !seen[e.Batch] {
			seen[e.Batch] = true
			axis[col(e.Start)] = '|'
		}
	}
	if _, err := fmt.Fprintf(w, "batch |%s|\n", string(axis)); err != nil {
		return err
	}
	label := span.Round(time.Second).String()
	pad := opts.Width - len(label)
	if pad < 1 {
		pad = 1
	}
	_, err := fmt.Fprintf(w, "      0%s%s\n", strings.Repeat(" ", pad), label)
	return err
}
