package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSimStartsAtEpoch(t *testing.T) {
	s := NewSim()
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), Epoch)
	}
	if s.Elapsed() != 0 {
		t.Fatalf("Elapsed() = %v, want 0", s.Elapsed())
	}
}

func TestAfterOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Elapsed() != 3*time.Second {
		t.Fatalf("Elapsed = %v, want 3s", s.Elapsed())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := NewSim()
	fired := false
	e := s.After(time.Second, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelNilSafe(t *testing.T) {
	var e *Event
	e.Cancel() // must not panic
}

func TestScheduleInPastClamps(t *testing.T) {
	s := NewSim()
	s.After(10*time.Second, func() {})
	s.Run()
	var at time.Time
	s.At(Epoch, func() { at = s.Now() })
	s.Run()
	if at.Before(Epoch.Add(10 * time.Second)) {
		t.Fatalf("past event ran at %v; clock went backwards", at)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	s := NewSim()
	ran := false
	s.After(-time.Hour, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if s.Elapsed() != 0 {
		t.Fatalf("Elapsed = %v, want 0", s.Elapsed())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(Epoch.Add(5 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != Epoch.Add(5*time.Second) {
		t.Fatalf("Now = %v, want epoch+5s", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := NewSim()
	s.RunFor(time.Minute)
	if s.Elapsed() != time.Minute {
		t.Fatalf("Elapsed = %v, want 1m", s.Elapsed())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Elapsed() != 5*time.Second {
		t.Fatalf("Elapsed = %v, want 5s", s.Elapsed())
	}
}

func TestWallClock(t *testing.T) {
	w := Wall{}
	before := time.Now()
	got := w.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v outside [%v, %v]", got, before, after)
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// order in which they were scheduled.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := NewSim()
		var fired []time.Time
		for _, d := range delays {
			s.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i].Before(fired[j]) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending never goes negative and Run drains the queue.
func TestPropertyRunDrains(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		for i := 0; i < int(n); i++ {
			s.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
		}
		s.Run()
		return s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
