// Package simclock provides virtual and wall clocks plus a discrete-event
// scheduler. All CLAMShell components are programmed against the Clock
// interface so identical logic runs inside the fast, deterministic simulator
// and in live deployments.
package simclock

import (
	"container/heap"
	"time"
)

// Clock exposes the current time. Implementations are Sim (virtual time,
// advanced by the event loop) and Wall (the machine clock).
type Clock interface {
	Now() time.Time
}

// Wall is a Clock backed by the real machine clock.
type Wall struct{}

// Now returns the current wall-clock time.
func (Wall) Now() time.Time { return time.Now() }

// Epoch is the instant at which every simulation starts. A fixed epoch keeps
// simulated timestamps reproducible across runs.
var Epoch = time.Date(2015, 9, 20, 0, 0, 0, 0, time.UTC)

// Event is a scheduled callback. Cancel prevents a pending event from firing.
type Event struct {
	at       time.Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once fired or cancelled
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// At returns the time at which the event is (or was) scheduled to fire.
func (e *Event) At() time.Time { return e.at }

// Sim is a discrete-event simulator: a priority queue of events ordered by
// virtual time (ties broken by scheduling order). It is not safe for
// concurrent use; simulation runs are single-goroutine by design so that they
// are deterministic.
type Sim struct {
	now time.Time
	pq  eventHeap
	seq uint64
}

// NewSim returns a simulator whose virtual clock starts at Epoch.
func NewSim() *Sim {
	return &Sim{now: Epoch}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Elapsed returns how much virtual time has passed since the epoch.
func (s *Sim) Elapsed() time.Duration { return s.now.Sub(Epoch) }

// At schedules fn to run at virtual time t. Scheduling in the past runs the
// event at the current time (time never moves backwards).
func (s *Sim) At(t time.Time, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.pq, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (s *Sim) Pending() int { return s.pq.Len() }

// Step fires the next event, advancing the virtual clock to its timestamp.
// It returns false when no runnable event remains.
func (s *Sim) Step() bool {
	for s.pq.Len() > 0 {
		e := heap.Pop(&s.pq).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (s *Sim) RunUntil(t time.Time) {
	for s.pq.Len() > 0 {
		e := s.pq[0]
		if e.at.After(t) {
			break
		}
		s.Step()
	}
	if t.After(s.now) {
		s.now = t
	}
}

// RunFor is RunUntil(Now().Add(d)).
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// eventHeap implements container/heap over pending events.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
