package clamshell

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/clamshell/clamshell/internal/hybrid"
	"github.com/clamshell/clamshell/internal/server"
)

// BenchmarkHybridLoop measures the hybrid learning plane's economics: the
// same feature-carrying workload labeled by a 90%-accurate simulated crowd
// with and without the model in the loop. It reports human labels per task
// and consensus labels per dollar for both modes, and fails if the model
// stops saving at least 30% of human labels at equal-or-better consensus
// accuracy — the CI bench-smoke run doubles as the regression gate for the
// hybrid loop's headline claim.
func BenchmarkHybridLoop(b *testing.B) {
	const tasks = 150
	for i := 0; i < b.N; i++ {
		crowdLabels, crowdAcc, crowdCost := hybridScenario(b, tasks, false)
		hybridLabels, hybridAcc, hybridCost := hybridScenario(b, tasks, true)
		saved := 1 - float64(hybridLabels)/float64(crowdLabels)
		if saved < 0.30 {
			b.Fatalf("model in the loop saved only %.1f%% of human labels, want >= 30%%", saved*100)
		}
		if hybridAcc < crowdAcc {
			b.Fatalf("hybrid accuracy %.3f fell below pure-crowd accuracy %.3f", hybridAcc, crowdAcc)
		}
		if i == 0 {
			b.ReportMetric(float64(hybridLabels)/tasks, "human-labels/task")
			b.ReportMetric(saved*100, "labels-saved-%")
			b.ReportMetric(tasks/crowdCost, "crowd-labels/$")
			b.ReportMetric(tasks/hybridCost, "hybrid-labels/$")
		}
	}
}

// hybridScenario labels nTasks 2-class feature-carrying tasks (quorum 3)
// through a live shard with a 90%-accurate simulated crowd, optionally
// with the learning plane in the loop. It returns the human labels
// consumed, the consensus accuracy against ground truth, and the total
// crowd spend in dollars.
func hybridScenario(tb testing.TB, nTasks int, withModel bool) (humanLabels int, accuracy float64, dollars float64) {
	tb.Helper()
	const quorum, workers = 3, 6
	now := time.Unix(1_700_000_000, 0)
	s := server.NewShard(server.Config{
		Now:           func() time.Time { return now },
		WorkerTimeout: time.Hour,
	}, 0, 1)

	rng := rand.New(rand.NewSource(4242))
	specs := make([]server.TaskSpec, nTasks)
	classes := make([]int, nTasks)
	for i := range specs {
		y := rng.Intn(2)
		classes[i] = y
		c := float64(y*4 - 2)
		specs[i] = server.TaskSpec{
			Records: []string{fmt.Sprintf("record-%d", i)},
			Classes: 2,
			Quorum:  quorum,
			Features: [][]float64{{
				c + rng.NormFloat64()*0.5, -c + rng.NormFloat64()*0.5,
			}},
		}
	}

	var plane *hybrid.Plane
	if withModel {
		plane = hybrid.New(hybrid.Config{Confidence: 0.95, MinTrained: 25, Seed: 11}, s)
		s.SetLabelSink(plane.Ingest)
		defer plane.Close()
	}

	ids, err := s.CoreEnqueue(specs)
	if err != nil {
		tb.Fatal(err)
	}
	truth := make(map[int]int, nTasks)
	for i, id := range ids {
		truth[id] = classes[i]
	}
	var wids []int
	for w := 0; w < workers; w++ {
		wids = append(wids, s.CoreJoin(fmt.Sprintf("crowd-%d", w)))
	}

	for remaining := len(ids); remaining > 0; {
		for _, w := range wids {
			a, disp := s.CoreFetch(w)
			if disp != server.FetchAssigned {
				continue
			}
			label := truth[a.TaskID]
			if rng.Float64() >= 0.9 {
				label = 1 - label
			}
			reply, cerr := s.CoreSubmit(w, a.TaskID, []int{label})
			if cerr != nil {
				tb.Fatal(cerr.Err)
			}
			if reply.Accepted {
				humanLabels++
			}
		}
		now = now.Add(time.Second)
		if plane != nil {
			plane.Pump()
		}
		remaining = 0
		for _, id := range ids {
			if st, ok := s.CoreResult(id); !ok || st.State != "complete" {
				remaining++
			}
		}
	}

	correct := 0
	for _, id := range ids {
		st, _ := s.CoreResult(id)
		if len(st.Consensus) == 1 && st.Consensus[0] == truth[id] {
			correct++
		}
	}
	return humanLabels, float64(correct) / float64(nTasks), s.AccruedCosts().Total().Dollars()
}
