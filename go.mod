module github.com/clamshell/clamshell

go 1.22
