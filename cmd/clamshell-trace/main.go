// Command clamshell-trace renders a per-assignment trace CSV (written by
// clamshell-sim -trace, or by RunResult.Trace.WriteCSV) as an ASCII Gantt
// chart — the terminal rendition of the paper's Figure 13.
//
// Usage:
//
//	clamshell-sim -tasks 100 -sm -trace run.csv
//	clamshell-trace -in run.csv -width 120 -workers 20
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/clamshell/clamshell/internal/gantt"
	"github.com/clamshell/clamshell/internal/metrics"
	"github.com/clamshell/clamshell/internal/simclock"
)

func main() {
	in := flag.String("in", "", "trace CSV file (required)")
	width := flag.Int("width", 100, "chart width in columns")
	workers := flag.Int("workers", 30, "max worker rows (0 = all)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := metrics.ReadTraceCSV(f, simclock.Epoch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := gantt.Render(os.Stdout, tr, gantt.Options{Width: *width, MaxWorkers: *workers}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
