// Command clamshell-bench regenerates the CLAMShell paper's tables and
// figures on the simulated crowd.
//
// Usage:
//
//	clamshell-bench -list
//	clamshell-bench -exp fig9 [-seed 42]
//	clamshell-bench -all
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/clamshell/clamshell/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	seed := flag.Int64("seed", 42, "base random seed")
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-12s %s\n", id, experiments.Describe(id))
		}
	case *all:
		for _, r := range experiments.RunAll(*seed) {
			r.Format(os.Stdout)
		}
	case *exp != "":
		r, err := experiments.Run(*exp, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r.Format(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
