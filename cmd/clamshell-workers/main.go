// Command clamshell-workers drives a pool of simulated crowd workers
// against a running clamshell-server: each worker joins the retainer pool,
// polls for tasks, labels them with configurable latency and accuracy, and
// heartbeats while idle. Use it to demo or load-test the routing server
// without a real crowd:
//
//	clamshell-server -addr :8080 &
//	clamshell-workers -server http://localhost:8080 -n 10 -mean 2s
//
// With -wire the workers speak the binary wire protocol instead of
// JSON/HTTP — one persistent TCP connection per worker:
//
//	clamshell-server -addr :8080 -listen-wire :9090 &
//	clamshell-workers -wire localhost:9090 -n 50 -mean 500ms
//
// Workers run until interrupted. A fraction of them can be made stragglers
// to exercise straggler mitigation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"github.com/clamshell/clamshell/internal/retry"
	"github.com/clamshell/clamshell/internal/server"
	"github.com/clamshell/clamshell/internal/wire"
)

// workerClient is the protocol surface one simulated worker drives;
// *server.Client (HTTP) and *wire.Client both satisfy it.
type workerClient interface {
	Join(name string) (int, error)
	Heartbeat(workerID int) error
	Leave(workerID int) error
	FetchTask(workerID int) (server.Assignment, bool, error)
	Submit(workerID, taskID int, labels []int) (accepted, terminated bool, err error)
}

// pairClient is the optional coalescing surface: submit an answer and
// fetch the next assignment in one round trip. *wire.Client batches the
// pair into a single v2 frame; HTTP clients don't implement it and fall
// back to two requests.
type pairClient interface {
	SubmitAndFetch(workerID, taskID int, labels []int) (accepted, terminated bool, next server.Assignment, ok bool, err error)
}

// wireReconnects counts connections re-dialed after poisoning, fleet-wide
// (the clamshell_wire_reconnects_total series, logged on each reconnect).
var wireReconnects atomic.Uint64

func main() {
	var (
		base     = flag.String("server", "http://localhost:8080", "clamshell-server base URL")
		wireAddr = flag.String("wire", "", "wire-protocol address (e.g. localhost:9090); empty = JSON/HTTP via -server")
		n        = flag.Int("n", 10, "number of simulated workers")
		mean     = flag.Duration("mean", 2*time.Second, "mean per-record work time")
		accuracy = flag.Float64("accuracy", 0.9, "per-record answer accuracy")
		slowFrac = flag.Float64("slow", 0.2, "fraction of workers that are 5x stragglers")
		seed     = flag.Int64("seed", 1, "random seed")
		poll     = flag.Duration("poll", 250*time.Millisecond, "idle polling interval")
	)
	flag.Parse()

	stop := make(chan struct{})
	go func() {
		c := make(chan os.Signal, 1)
		signal.Notify(c, os.Interrupt)
		<-c
		close(stop)
	}()

	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(id)))
			slow := rng.Float64() < *slowFrac
			myMean := *mean
			if slow {
				myMean *= 5
			}
			var c workerClient
			var reconnect func() (workerClient, error)
			if *wireAddr != "" {
				wc, err := wire.Dial(*wireAddr)
				if err != nil {
					log.Printf("sim-%d: wire dial: %v", id, err)
					return
				}
				defer wc.Close()
				c = wc
				// Re-dial forever under backoff (bounded only by stop): a
				// fleet rides out server restarts and failovers instead of
				// evaporating on the first poisoned connection.
				policy := retry.Policy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.5, Seed: uint64(*seed) + uint64(id)}
				reconnect = func() (workerClient, error) {
					var nc *wire.Client
					err := policy.Do(stop, func() error {
						cl, err := wire.Dial(*wireAddr)
						if err != nil {
							return err
						}
						nc = cl
						return nil
					})
					if err != nil {
						return nil, err
					}
					wireReconnects.Add(1)
					return nc, nil
				}
			} else {
				c = server.NewClient(*base)
			}
			runWorker(c, id, myMean, *accuracy, *poll, rng, stop, reconnect)
		}(i)
	}
	target := *base
	if *wireAddr != "" {
		target = "wire://" + *wireAddr
	}
	log.Printf("%d simulated workers polling %s (ctrl-c to stop)", *n, target)
	wg.Wait()
	if r := wireReconnects.Load(); r > 0 {
		log.Printf("fleet total clamshell_wire_reconnects_total %d", r)
	}
}

// runWorker is one simulated worker's loop: join, poll, work, submit.
// When the transport coalesces (wire v2), each submit also carries the
// next fetch, so a busy worker costs one round trip per task instead of
// two and only falls back to the poll ticker when the backlog runs dry.
func runWorker(c workerClient, id int, mean time.Duration, accuracy float64,
	poll time.Duration, rng *rand.Rand, stop <-chan struct{},
	reconnect func() (workerClient, error)) {
	name := fmt.Sprintf("sim-%d", id)
	wid, err := c.Join(name)
	if err != nil {
		log.Printf("%s: join failed: %v", name, err)
		return
	}
	log.Printf("%s joined as worker %d (mean %v)", name, wid, mean)
	pc, coalesce := c.(pairClient)

	// refresh replaces a poisoned wire connection and rejoins. Worker
	// sessions never survive the far side of a reconnect (a failover
	// drops them by design), so the fresh connection means a fresh id and
	// any in-flight assignment falls back to the queue for someone else.
	refresh := func(cause error) bool {
		if reconnect == nil || !errors.Is(cause, wire.ErrPoisoned) {
			return false
		}
		nc, err := reconnect()
		if err != nil {
			return false
		}
		if old, ok := c.(*wire.Client); ok {
			old.Close()
		}
		c = nc
		pc, coalesce = c.(pairClient)
		if wid, err = c.Join(name); err != nil {
			log.Printf("%s: rejoin after reconnect failed: %v", name, err)
			return false
		}
		log.Printf("%s: reconnected and rejoined as worker %d (clamshell_wire_reconnects_total %d)",
			name, wid, wireReconnects.Load())
		return true
	}

	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	var a server.Assignment
	var have bool
	for {
		if !have {
			select {
			case <-stop:
				c.Leave(wid)
				return
			case <-ticker.C:
			}
			a, have, err = c.FetchTask(wid)
			if err != nil {
				if refresh(err) {
					continue
				}
				log.Printf("%s: retired or server gone: %v", name, err)
				return
			}
			if !have {
				c.Heartbeat(wid)
				continue
			}
		}
		// Work: lognormal-ish latency around mean, scaled by record count.
		perRec := mean.Seconds() * math.Exp(rng.NormFloat64()*0.4)
		work := time.Duration(perRec * float64(len(a.Records)) * float64(time.Second))
		select {
		case <-stop:
			c.Leave(wid)
			return
		case <-time.After(work):
		}
		labels := make([]int, len(a.Records))
		for i := range labels {
			if rng.Float64() < accuracy {
				labels[i] = 0 // "correct" placeholder class
			} else {
				labels[i] = rng.Intn(a.Classes)
			}
		}
		done := a.TaskID
		var accepted, terminated bool
		if coalesce {
			accepted, terminated, a, have, err = pc.SubmitAndFetch(wid, done, labels)
		} else {
			accepted, terminated, err = c.Submit(wid, done, labels)
			have = false
		}
		if err != nil {
			if refresh(err) {
				have = false
				continue
			}
			log.Printf("%s: submit failed: %v", name, err)
			return
		}
		if terminated {
			log.Printf("%s: task %d was already done (straggled, still paid)", name, done)
		} else if accepted {
			log.Printf("%s: completed task %d", name, done)
		}
	}
}
