package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/clamshell/clamshell/internal/fabric"
	"github.com/clamshell/clamshell/internal/repl"
	"github.com/clamshell/clamshell/internal/server"
	"github.com/clamshell/clamshell/internal/wire"
)

// The two stateless roles of a multi-node deployment. A router fronts the
// fabric's nodes and forwards every op to the stripe owner; a follower
// mirrors one node's journals and promotes into its place on demand. Both
// run out of the same binary so a deployment is one artifact in three
// roles: clamshell-server (node), -route (router), -follow (follower).

// runRouter serves the stateless routing front end over the given
// comma-separated node wire addresses (in node-index order: the order IS
// the stripe assignment).
func runRouter(httpAddr, wireAddr, nodes string) {
	var remotes []*fabric.RemoteShard
	for _, a := range strings.Split(nodes, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		remotes = append(remotes, fabric.NewRemoteShard(a, fabric.RemoteOptions{}))
	}
	if len(remotes) == 0 {
		log.Fatal("-route needs at least one node address")
	}
	rt := fabric.NewRouter(remotes, nil)
	if wireAddr != "" {
		l, err := net.Listen("tcp", wireAddr)
		if err != nil {
			log.Fatalf("wire listener: %v", err)
		}
		ws := wire.NewServer(rt)
		log.Printf("wire protocol listening on %s (routing)", wireAddr)
		go func() {
			if err := ws.Serve(l); err != nil && !wire.IsClosed(err) {
				log.Printf("wire server stopped (continuing HTTP-only): %v", err)
			}
		}()
	}
	log.Printf("clamshell-server routing on %s over %d node(s): %s", httpAddr, len(remotes), nodes)
	log.Fatal(http.ListenAndServe(httpAddr, rt))
}

// followerState is the -follow role: a running journal mirror plus
// everything needed to promote it into a serving node.
type followerState struct {
	fol       *repl.Follower
	cfg       server.Config
	persist   fabric.PersistOptions
	nodeIndex int
	nodeCount int
	wireAddr  string
	replOn    bool
	replWait  time.Duration
	startedAt time.Time

	mu       sync.Mutex
	promoted http.Handler // nil until promotion
}

// runFollower mirrors the primary at primaryAddr into the persist
// directory and serves the follower control surface: health, metrics and
// POST /api/promote, which stops the pulls, recovers the mirror through
// the standard journal path and swaps the full node API in.
func runFollower(httpAddr, primaryAddr string, cfg server.Config, persist fabric.PersistOptions,
	nodeIndex, nodeCount int, wireAddr string, replOn bool, replWait time.Duration) {
	if persist.Dir == "" {
		log.Fatal("-follow requires -persist-dir (the mirror directory)")
	}
	fol, err := repl.NewFollower(repl.FollowerConfig{Addr: primaryAddr, Dir: persist.Dir})
	if err != nil {
		log.Fatalf("starting follower: %v", err)
	}
	go fol.Run()
	fs := &followerState{
		fol: fol, cfg: cfg, persist: persist,
		nodeIndex: nodeIndex, nodeCount: nodeCount,
		wireAddr: wireAddr, replOn: replOn, replWait: replWait,
		startedAt: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/healthz", fs.handleHealthz)
	mux.HandleFunc("GET /metrics", fs.handleMetrics)
	mux.HandleFunc("GET /api/metricsz", fs.handleMetrics)
	mux.HandleFunc("POST /api/promote", fs.handlePromote)
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Promotion swaps the whole node API in; the promote endpoint
		// itself stays reachable so a retried promotion is acknowledged.
		if r.Method == http.MethodPost && r.URL.Path == "/api/promote" {
			fs.handlePromote(w, r)
			return
		}
		fs.mu.Lock()
		h := fs.promoted
		fs.mu.Unlock()
		if h != nil {
			h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
	log.Printf("clamshell-server following %s into %s (POST /api/promote to take over)", primaryAddr, persist.Dir)
	log.Fatal(http.ListenAndServe(httpAddr, root))
}

// lagMS is milliseconds since the last completed pull (0 before attach).
func (fs *followerState) lagMS() float64 {
	last := fs.fol.LastPull()
	if last.IsZero() {
		return 0
	}
	return float64(time.Since(last).Milliseconds())
}

func (fs *followerState) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fs.mu.Lock()
	promoted := fs.promoted != nil
	fs.mu.Unlock()
	role := "follower"
	if promoted {
		role = "primary"
	}
	writeJSONTo(w, map[string]any{
		"ok":                 true,
		"role":               role,
		"uptime_ms":          time.Since(fs.startedAt).Milliseconds(),
		"attached":           fs.fol.Attached(),
		"replication_lag_ms": fs.lagMS(),
		"shards":             fs.fol.Shards(),
	})
}

func (fs *followerState) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	server.FollowerMetrics{
		Attached:    fs.fol.Attached(),
		LagMS:       fs.lagMS(),
		LagBytes:    float64(fs.fol.LagBytes()),
		PulledBytes: fs.fol.PulledBytes(),
		Bootstraps:  fs.fol.Bootstraps(),
	}.Render(&b)
	wire.WriteClientMetrics(&b, fs.fol.Reconnects())
	w.Write([]byte(b.String()))
}

// handlePromote turns the mirror into a serving node: stop the pulls,
// recover the mirrored journals through the standard boot path, arm
// replication for the node's own future follower, and swap the node API
// in. No journal surgery: the mirror is already a valid persist directory.
func (fs *followerState) handlePromote(w http.ResponseWriter, r *http.Request) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.promoted != nil {
		writeJSONTo(w, map[string]any{"ok": true, "role": "primary", "already": true, "shards": fs.fol.Shards()})
		return
	}
	fs.fol.Stop()
	shards := fs.fol.Shards()
	if shards == 0 {
		http.Error(w, `{"error":"mirror is empty: follower never attached"}`, http.StatusConflict)
		return
	}
	fab := fabric.NewNode(fs.cfg, shards, fs.nodeIndex, fs.nodeCount)
	if err := fab.OpenPersist(fs.persist); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	if fs.replOn {
		if err := fab.EnableReplication(fs.replWait); err != nil {
			log.Printf("promotion: replication not re-armed: %v", err)
		}
	}
	if fs.wireAddr != "" {
		l, err := net.Listen("tcp", fs.wireAddr)
		if err != nil {
			log.Printf("promotion: wire listener: %v (serving HTTP only)", err)
		} else {
			ws := wire.NewServer(fab)
			ws.Barrier = fab.ReplBarrier()
			go func() {
				if err := ws.Serve(l); err != nil && !wire.IsClosed(err) {
					log.Printf("wire server stopped (continuing HTTP-only): %v", err)
				}
			}()
			log.Printf("promotion: wire protocol listening on %s", fs.wireAddr)
		}
	}
	fs.promoted = fab
	log.Printf("promoted: serving %d shard(s) recovered from %s as node %d/%d",
		shards, fs.persist.Dir, fs.nodeIndex, fs.nodeCount)
	writeJSONTo(w, map[string]any{"ok": true, "role": "primary", "shards": shards})
}

func writeJSONTo(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
