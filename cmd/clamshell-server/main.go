// Command clamshell-server runs the retainer-pool HTTP routing server for
// live crowd deployments. Workers join, heartbeat, poll for tasks and
// submit labels; clients enqueue tasks and read consensus results.
//
// Usage:
//
//	clamshell-server -addr :8080 -speculation 1 -worker-timeout 2m
//
// API (JSON over HTTP):
//
//	POST /api/join        {"name": "..."}                 -> {"worker_id": N}
//	POST /api/heartbeat   {"worker_id": N}
//	POST /api/leave       {"worker_id": N}
//	POST /api/tasks       {"tasks": [{records, classes, quorum}]} -> {"task_ids": [...]}
//	GET  /api/task?worker_id=N                            -> assignment or 204
//	POST /api/submit      {"worker_id", "task_id", "labels"}
//	GET  /api/result?task_id=N                            -> status + consensus
//	GET  /api/status                                      -> pool counters
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"github.com/clamshell/clamshell/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	spec := flag.Int("speculation", 1, "speculative duplicates per outstanding answer")
	timeout := flag.Duration("worker-timeout", 2*time.Minute, "expire workers after this heartbeat silence")
	maintenance := flag.Duration("maintenance-threshold", 0, "retire workers slower than this per record (0 = off)")
	flag.Parse()

	srv := server.New(server.Config{
		SpeculationLimit:     *spec,
		WorkerTimeout:        *timeout,
		MaintenanceThreshold: *maintenance,
	})
	log.Printf("clamshell-server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
