// Command clamshell-server runs the retainer-pool HTTP routing server for
// live crowd deployments. Workers join, heartbeat, poll for tasks and
// submit labels; clients enqueue tasks and read consensus results.
//
// With -shards N > 1 the server runs as a fabric of N independently-locked
// pool shards behind one router (see internal/fabric): tasks are placed by
// consistent hashing of their content, workers are pinned to shards on
// join, and idle shards steal work across the fabric so straggler
// mitigation stays global. -shards 1 (the default) speaks byte-for-byte
// the same protocol as the historical single-mutex server.
//
// With -persist-dir the fabric journals every durable mutation through a
// per-shard append-only op log and periodically compacts it into per-shard
// snapshots, so a restart (or crash) recovers the standing backlog and the
// pay/quality ledger instead of losing them. -retention demotes completed
// tasks older than the window to compact vote tallies (consensus keeps its
// full history; the record payloads are dropped); -tally-horizon further
// ages tallies older than its window down to count-only consensus
// aggregates, bounding retained-log growth on long-lived deployments;
// -compact-interval sets the compaction cadence. Restarting with a different -shards value over
// the same directory re-places every task onto the new layout without
// losing any.
//
// With -listen-wire the server additionally speaks the binary wire
// protocol (internal/wire) on a second listener: the same five hot ops
// (join, enqueue, fetch, submit, leave/heartbeat) over persistent TCP
// connections with varint+CRC framing, for worker fleets whose poll rates
// make JSON/HTTP encode/decode the bottleneck. Both transports route into
// the same fabric; JSON/HTTP remains the control and compatibility
// surface.
//
// The same binary runs every role of a multi-node fabric. A node started
// with -node-index I -node-count N owns the stripe of global shard and
// task/worker ids congruent to I mod N; a front end started with
// -route addr1,addr2,... (node wire addresses, in node-index order)
// forwards every op to the stripe owner over persistent wire connections
// with retries and per-node circuit breakers, merging fabric-wide reads.
// A process started with -follow addr mirrors that primary's journals
// into -persist-dir over the wire protocol's streaming replication pull
// (resumable by segment offset, CRC-checked end to end) and serves
// health/metrics until POST /api/promote recovers the mirror through the
// standard journal path and swaps in the full node API. On a node, -repl
// exposes the replication feed and gates mutation acknowledgements on
// follower durability (degrading to local-only after -repl-barrier).
//
// With -hybrid the server runs the live hybrid learning plane
// (internal/hybrid): finalized labels of feature-carrying tasks train a
// per-job committee model, tasks the model can call at or above
// -confidence are auto-finalized without further crowd work (journaled,
// with model provenance on /api/result and /api/consensus), and every
// -relabel-interval the pending backlog is re-prioritized by vote entropy
// so crowd attention flows to the tasks the model is least sure about.
//
// Usage:
//
//	clamshell-server -addr :8080 -listen-wire :9090 -shards 8 -speculation 1 \
//	    -worker-timeout 2m -persist-dir /var/lib/clamshell -retention 24h \
//	    -compact-interval 1m -fsync group
//
// API (JSON over HTTP):
//
//	POST /api/join        {"name": "..."}                 -> {"worker_id": N}
//	POST /api/heartbeat   {"worker_id": N}
//	POST /api/leave       {"worker_id": N}
//	POST /api/tasks       {"tasks": [{records, classes, quorum}]} -> {"task_ids": [...]}
//	GET  /api/task?worker_id=N                            -> assignment or 204
//	POST /api/submit      {"worker_id", "task_id", "labels"}
//	GET  /api/result?task_id=N                            -> status + consensus
//	GET  /api/status                                      -> pool counters
package main

import (
	"crypto/tls"
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/clamshell/clamshell/internal/fabric"
	"github.com/clamshell/clamshell/internal/hybrid"
	"github.com/clamshell/clamshell/internal/server"
	"github.com/clamshell/clamshell/internal/wire"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	wireAddr := flag.String("listen-wire", "", "binary wire-protocol listen address, e.g. :9090 (empty = disabled)")
	wireRate := flag.Float64("wire-rate", 0, "per-connection wire op rate limit in ops/sec; over-limit ops get an in-band throttle error (0 = unlimited)")
	wireTLSCert := flag.String("wire-tls-cert", "", "serve the wire listener over TLS with this certificate file (with -wire-tls-key)")
	wireTLSKey := flag.String("wire-tls-key", "", "TLS private key file for -wire-tls-cert")
	shards := flag.Int("shards", 1, "independently-locked pool shards")
	spec := flag.Int("speculation", 1, "speculative duplicates per outstanding answer")
	timeout := flag.Duration("worker-timeout", 2*time.Minute, "expire workers after this heartbeat silence")
	maintenance := flag.Duration("maintenance-threshold", 0, "retire workers slower than this per record (0 = off)")
	persistDir := flag.String("persist-dir", "", "journal + snapshot directory for durable state (empty = in-memory only)")
	retention := flag.Duration("retention", 0, "demote completed tasks older than this to vote tallies at compaction (0 = keep full history)")
	tallyHorizon := flag.Duration("tally-horizon", 0, "age retained vote tallies older than this to count-only aggregates at compaction (0 = keep full tallies forever)")
	compactInterval := flag.Duration("compact-interval", time.Minute, "how often to compact the op journal into a snapshot (with -persist-dir)")
	fsync := flag.String("fsync", "group", "op-journal fsync policy: commit (every op), group (batched on a short ticker) or off")
	fsyncInterval := flag.Duration("fsync-interval", 0, "group-commit batching interval (0 = the journal default)")
	hybridOn := flag.Bool("hybrid", false, "enable the live hybrid learning plane: train on finalized labels, auto-finalize confident tasks, re-prioritize uncertain ones")
	confidence := flag.Float64("confidence", 0.95, "minimum model confidence (soft-vote probability) before a task is auto-finalized (with -hybrid)")
	relabelInterval := flag.Duration("relabel-interval", 30*time.Second, "uncertainty re-prioritization cadence for the pending backlog (with -hybrid; 0 = off)")
	nodeIndex := flag.Int("node-index", 0, "this node's index in a multi-node fabric (with -node-count)")
	nodeCount := flag.Int("node-count", 1, "total nodes in the fabric; this node serves its (node-index mod node-count) stripe of shard and task ids")
	replOn := flag.Bool("repl", false, "serve journal replication to followers over the wire listener and gate mutation acks on follower durability (needs -persist-dir and -listen-wire)")
	replBarrier := flag.Duration("repl-barrier", 5*time.Second, "how long a mutation ack waits for the attached follower before degrading to local-only durability (with -repl)")
	route := flag.String("route", "", "run as a stateless router over these comma-separated node wire addresses, in node-index order (no local shards)")
	follow := flag.String("follow", "", "run as a journal-shipping follower of the primary at this wire address, mirroring into -persist-dir (POST /api/promote to take over)")
	flag.Parse()

	cfg := server.Config{
		SpeculationLimit:     *spec,
		WorkerTimeout:        *timeout,
		MaintenanceThreshold: *maintenance,
		TallyHorizon:         *tallyHorizon,
	}
	persist := fabric.PersistOptions{
		Dir:             *persistDir,
		Retention:       *retention,
		CompactInterval: *compactInterval,
		Fsync:           *fsync,
		FsyncInterval:   *fsyncInterval,
	}
	if *route != "" && *follow != "" {
		log.Fatal("-route and -follow are mutually exclusive roles")
	}
	if *nodeIndex < 0 || *nodeCount < 1 || *nodeIndex >= *nodeCount {
		log.Fatalf("-node-index %d out of range for -node-count %d", *nodeIndex, *nodeCount)
	}
	if *route != "" {
		runRouter(*addr, *wireAddr, *route)
		return
	}
	if *follow != "" {
		runFollower(*addr, *follow, cfg, persist, *nodeIndex, *nodeCount, *wireAddr, *replOn, *replBarrier)
		return
	}

	fab := fabric.NewNode(cfg, *shards, *nodeIndex, *nodeCount)
	if *persistDir != "" {
		if err := fab.OpenPersist(persist); err != nil {
			log.Fatalf("opening persistence: %v", err)
		}
		log.Printf("durable state in %s (retention %v, compaction every %v, fsync %s)",
			*persistDir, *retention, *compactInterval, *fsync)
	}
	if *replOn {
		if *wireAddr == "" {
			log.Fatal("-repl needs -listen-wire: followers pull over the wire protocol")
		}
		if err := fab.EnableReplication(*replBarrier); err != nil {
			log.Fatalf("enabling replication: %v", err)
		}
		log.Printf("replication enabled (ack barrier %v)", *replBarrier)
	}
	if *hybridOn {
		// After OpenPersist, so the plane re-seeds from the recovered
		// backlog; its auto-finalize decisions are journaled like any other
		// durable mutation and replay byte-exactly on the next recovery.
		plane := fab.EnableHybrid(hybrid.Config{
			Confidence:      *confidence,
			RelabelInterval: *relabelInterval,
		})
		defer plane.Close()
		log.Printf("hybrid learning plane enabled (confidence %.2f, relabel every %v)",
			*confidence, *relabelInterval)
	}
	if *wireAddr != "" {
		l, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("wire listener: %v", err)
		}
		scheme := "wire"
		if *wireTLSCert != "" || *wireTLSKey != "" {
			cert, err := tls.LoadX509KeyPair(*wireTLSCert, *wireTLSKey)
			if err != nil {
				log.Fatalf("wire TLS keypair: %v", err)
			}
			l = tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{cert}})
			scheme = "wire+tls"
		}
		ws := wire.NewServer(fab)
		ws.RateLimit = *wireRate
		ws.Barrier = fab.ReplBarrier()
		log.Printf("%s protocol listening on %s (rate limit %g ops/s/conn)", scheme, *wireAddr, *wireRate)
		go func() {
			// A permanently broken wire listener degrades the server to
			// HTTP-only rather than killing the live shard state with it
			// (Serve already retries transient accept errors internally).
			if err := ws.Serve(l); err != nil && !wire.IsClosed(err) {
				log.Printf("wire server stopped (continuing HTTP-only): %v", err)
			}
		}()
	}
	if *nodeCount > 1 {
		log.Printf("fabric node %d/%d: serving ids congruent to %d mod %d", *nodeIndex, *nodeCount, *nodeIndex, *nodeCount)
	}
	log.Printf("clamshell-server listening on %s (%d shard(s))", *addr, fab.NumShards())
	log.Fatal(http.ListenAndServe(*addr, fab))
}
