// Command clamshell-server runs the retainer-pool HTTP routing server for
// live crowd deployments. Workers join, heartbeat, poll for tasks and
// submit labels; clients enqueue tasks and read consensus results.
//
// With -shards N > 1 the server runs as a fabric of N independently-locked
// pool shards behind one router (see internal/fabric): tasks are placed by
// consistent hashing of their content, workers are pinned to shards on
// join, and idle shards steal work across the fabric so straggler
// mitigation stays global. -shards 1 (the default) speaks byte-for-byte
// the same protocol as the historical single-mutex server.
//
// Usage:
//
//	clamshell-server -addr :8080 -shards 8 -speculation 1 -worker-timeout 2m
//
// API (JSON over HTTP):
//
//	POST /api/join        {"name": "..."}                 -> {"worker_id": N}
//	POST /api/heartbeat   {"worker_id": N}
//	POST /api/leave       {"worker_id": N}
//	POST /api/tasks       {"tasks": [{records, classes, quorum}]} -> {"task_ids": [...]}
//	GET  /api/task?worker_id=N                            -> assignment or 204
//	POST /api/submit      {"worker_id", "task_id", "labels"}
//	GET  /api/result?task_id=N                            -> status + consensus
//	GET  /api/status                                      -> pool counters
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"github.com/clamshell/clamshell/internal/fabric"
	"github.com/clamshell/clamshell/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "independently-locked pool shards")
	spec := flag.Int("speculation", 1, "speculative duplicates per outstanding answer")
	timeout := flag.Duration("worker-timeout", 2*time.Minute, "expire workers after this heartbeat silence")
	maintenance := flag.Duration("maintenance-threshold", 0, "retire workers slower than this per record (0 = off)")
	flag.Parse()

	fab := fabric.New(server.Config{
		SpeculationLimit:     *spec,
		WorkerTimeout:        *timeout,
		MaintenanceThreshold: *maintenance,
	}, *shards)
	log.Printf("clamshell-server listening on %s (%d shard(s))", *addr, fab.NumShards())
	log.Fatal(http.ListenAndServe(*addr, fab))
}
