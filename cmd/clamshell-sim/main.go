// Command clamshell-sim runs ad-hoc labeling simulations with flag-
// controlled parameters, printing the run summary, per-batch statistics and
// cost breakdown. It is the quickest way to explore how pool size, batch
// ratio, straggler mitigation and pool maintenance interact.
//
// Usage:
//
//	clamshell-sim -tasks 500 -pool 15 -ng 5 -sm -pm -threshold 8s
//	clamshell-sim -tasks 500 -pool 20 -ratio 3 -population medical
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/clamshell/clamshell/internal/core"
	"github.com/clamshell/clamshell/internal/pool"
	"github.com/clamshell/clamshell/internal/simclock"
	"github.com/clamshell/clamshell/internal/stats"
	"github.com/clamshell/clamshell/internal/straggler"
	"github.com/clamshell/clamshell/internal/worker"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "random seed")
		tasks      = flag.Int("tasks", 500, "number of tasks to label")
		poolSize   = flag.Int("pool", 15, "retainer pool size Np")
		ratio      = flag.Float64("ratio", 1, "pool/batch ratio R")
		ng         = flag.Int("ng", 5, "records per task Ng")
		quorum     = flag.Int("quorum", 1, "answers required per task")
		sm         = flag.Bool("sm", false, "enable straggler mitigation")
		pm         = flag.Bool("pm", false, "enable pool maintenance")
		threshold  = flag.Duration("threshold", 8*time.Second, "maintenance latency threshold PMl")
		termEst    = flag.Bool("termest", true, "use TermEst under mitigation")
		retainer   = flag.Bool("retainer", true, "use a retainer pool (false = open market)")
		population = flag.String("population", "live", "worker population: live|medical|bimodal")
		traceOut   = flag.String("trace", "", "write the per-assignment Gantt trace CSV to this file")
	)
	flag.Parse()

	cfg := core.Config{
		Seed:           *seed,
		PoolSize:       *poolSize,
		PoolBatchRatio: *ratio,
		GroupSize:      *ng,
		Quorum:         *quorum,
		NumTasks:       *tasks,
		Retainer:       *retainer,
		Straggler:      straggler.Config{Enabled: *sm, Policy: straggler.Random},
	}
	if *pm {
		cfg.Maintenance = pool.Config{
			Enabled:    true,
			Threshold:  *threshold,
			UseTermEst: *termEst && *sm,
		}
	}
	switch *population {
	case "live":
		cfg.Population = worker.Live
	case "medical":
		cfg.Population = worker.Medical
	case "bimodal":
		cfg.Population = func(rng *rand.Rand) worker.Population {
			return worker.Bimodal(rng, 0.5, 2*time.Second, 20*time.Second)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown population %q\n", *population)
		os.Exit(2)
	}

	res := core.NewEngine(cfg).RunLabeling()

	fmt.Printf("run: %s\n", res.Summary())
	fmt.Printf("labels/sec: %.2f  replaced workers: %d  terminated assignments: %d\n",
		res.Throughput(), res.Replaced, res.Trace.TerminatedCount())
	fmt.Printf("cost: %s\n\n", res.Cost)

	fmt.Println("batch  tasks  latency     task-std   MPL       replaced")
	for _, b := range res.Batches {
		fmt.Printf("%5d  %5d  %-10v  %-9.2f  %-8.2f  %d\n",
			b.Index, b.Tasks, b.Latency.Round(100*time.Millisecond),
			b.TaskStd.Seconds(), b.MeanPoolL.Seconds(), b.Replaced)
	}

	lat := stats.Summarize(res.BatchLatencies())
	fmt.Printf("\nbatch latency: %s\n", lat)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Trace.WriteCSV(f, simclock.Epoch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d assignment events written to %s\n", len(res.Trace.Events), *traceOut)
	}
}
