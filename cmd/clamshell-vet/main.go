// Command clamshell-vet is the project's static-analysis suite, usable as
// a `go vet -vettool` or standalone:
//
//	go build -o bin/clamshell-vet ./cmd/clamshell-vet
//	go vet -vettool=bin/clamshell-vet ./...
//
//	# or, equivalently:
//	bin/clamshell-vet ./...
//
// See internal/analyzers for the checkers and README.md ("Static
// analysis") for what each enforces.
package main

import "github.com/clamshell/clamshell/internal/analyzers"

func main() {
	analyzers.Main()
}
