package main

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/clamshell/clamshell/internal/server"
)

// The top command renders an operator dashboard from one /metrics scrape:
// queue backlog, hand-out wait and per-record latency quantiles, journal
// commit lag and steal rate — the numbers that say whether the fabric is
// keeping up. With -watch it re-scrapes on an interval and redraws in
// place, computing rates (ops/s, steals/s) from consecutive scrapes.

// sample is one parsed exposition series: name, label set, value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses the Prometheus text format far enough for our own
// scrape surface: comments are skipped, series split into name, optional
// {k="v",...} label block, and a float value. Lines that do not parse are
// ignored (forward compatibility beats strictness in a display tool).
func parseExposition(text string) []sample {
	var out []sample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		s := sample{name: line[:sp], value: v}
		if open := strings.IndexByte(s.name, '{'); open >= 0 {
			if !strings.HasSuffix(s.name, "}") {
				continue
			}
			body := s.name[open+1 : len(s.name)-1]
			s.labels = map[string]string{}
			for _, pair := range strings.Split(body, ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					continue
				}
				s.labels[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
			}
			s.name = s.name[:open]
		}
		out = append(out, s)
	}
	return out
}

// metricsView indexes a scrape for the renderer.
type metricsView struct {
	samples []sample
}

// get returns the first series matching name and every given label pair,
// with ok=false when absent.
func (m *metricsView) get(name string, labels ...string) (float64, bool) {
	for _, s := range m.samples {
		if s.name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.labels[labels[i]] != labels[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.value, true
		}
	}
	return 0, false
}

// quantiles returns the q->value map of a summary family (optionally
// filtered by extra label pairs).
func (m *metricsView) quantiles(name string, labels ...string) map[string]float64 {
	out := map[string]float64{}
	for _, s := range m.samples {
		if s.name != name || s.labels["quantile"] == "" {
			continue
		}
		match := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.labels[labels[i]] != labels[i+1] {
				match = false
				break
			}
		}
		if match {
			out[s.labels["quantile"]] = s.value
		}
	}
	return out
}

func runTop(c *server.Client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	watch := fs.Duration("watch", 0, "re-scrape interval (0 = print once and exit)")
	fs.Parse(args)

	var prev *metricsView
	var prevAt time.Time
	for {
		body, err := c.Metrics()
		if err != nil {
			return err
		}
		now := time.Now()
		view := &metricsView{samples: parseExposition(body)}
		if *watch > 0 {
			fmt.Print("\033[H\033[2J") // home + clear: redraw in place
		}
		renderTop(view, prev, now.Sub(prevAt))
		if *watch <= 0 {
			return nil
		}
		prev, prevAt = view, now
		time.Sleep(*watch)
	}
}

func renderTop(m, prev *metricsView, sincePrev time.Duration) {
	get := func(name string, labels ...string) float64 {
		v, _ := m.get(name, labels...)
		return v
	}
	// rate computes a per-second delta against the previous scrape; before
	// the second scrape there is no interval, so it reports -1 (hidden).
	rate := func(name string, labels ...string) float64 {
		if prev == nil || sincePrev <= 0 {
			return -1
		}
		pv, ok := prev.get(name, labels...)
		if !ok {
			return -1
		}
		v, _ := m.get(name, labels...)
		return (v - pv) / sincePrev.Seconds()
	}
	withRate := func(v, r float64, unit string) string {
		if r < 0 {
			return fmt.Sprintf("%g", v)
		}
		return fmt.Sprintf("%g (%.1f/%s)", v, r, unit)
	}

	fmt.Printf("tasks     %g total, %g complete\n",
		get("clamshell_tasks_total"), get("clamshell_tasks_complete"))
	fmt.Printf("workers   %g in pool, %g idle, %g expired\n",
		get("clamshell_workers"), get("clamshell_workers_idle"),
		get("clamshell_expired_workers_total"))
	fmt.Printf("cost      $%.4f\n", get("clamshell_cost_total_dollars"))

	var backlog []string
	for _, s := range m.samples {
		if s.name == "clamshell_backlog_depth" {
			backlog = append(backlog, fmt.Sprintf("p%s:%g", s.labels["priority"], s.value))
		}
	}
	sort.Strings(backlog)
	if len(backlog) == 0 {
		backlog = append(backlog, "empty")
	}
	fmt.Printf("backlog   %s\n", strings.Join(backlog, "  "))
	fmt.Printf("steals    %s\n",
		withRate(get("clamshell_steals_total"), rate("clamshell_steals_total"), "s"))

	summary := func(label, family string) {
		qs := m.quantiles(family)
		n := get(family + "_count")
		if n == 0 {
			fmt.Printf("%-9s (no samples)\n", label)
			return
		}
		fmt.Printf("%-9s p50 %-10s p95 %-10s p99 %-10s n=%g\n", label,
			fmtSeconds(qs["0.5"]), fmtSeconds(qs["0.95"]), fmtSeconds(qs["0.99"]), n)
	}
	summary("hand-out", "clamshell_handout_wait_seconds")
	summary("per-rec", "clamshell_latency_per_record_seconds")

	if _, ok := m.get("clamshell_hybrid_labels_total", "source", "human"); ok {
		human := get("clamshell_hybrid_labels_total", "source", "human")
		model := get("clamshell_hybrid_labels_total", "source", "model")
		line := fmt.Sprintf("human %s  model %s",
			withRate(human, rate("clamshell_hybrid_labels_total", "source", "human"), "s"),
			withRate(model, rate("clamshell_hybrid_labels_total", "source", "model"), "s"))
		if acc, ok := m.get("clamshell_hybrid_model_accuracy"); ok {
			line += fmt.Sprintf("  acc %.1f%%", acc*100)
		}
		fmt.Printf("labels    %s  pending %g\n", line, get("clamshell_hybrid_pending_candidates"))
	}
	if _, ok := m.get("clamshell_repl_lag_ms"); ok {
		state := "detached"
		if get("clamshell_repl_follower_attached") > 0 {
			state = "attached"
		}
		line := fmt.Sprintf("follower %s, lag %gms / %gB", state,
			get("clamshell_repl_lag_ms"), get("clamshell_repl_lag_bytes"))
		if _, ok := m.get("clamshell_repl_shipped_bytes_total"); ok {
			// Primary side: shipping rate and the degraded-ack alarm.
			line += fmt.Sprintf("  shipped %s B",
				withRate(get("clamshell_repl_shipped_bytes_total"), rate("clamshell_repl_shipped_bytes_total"), "s"))
			if d := get("clamshell_repl_sync_degraded_total"); d > 0 {
				line += fmt.Sprintf("  DEGRADED acks %g", d)
			}
		}
		if _, ok := m.get("clamshell_repl_pulled_bytes_total"); ok {
			// Follower side: pull rate and full re-seeds.
			line += fmt.Sprintf("  pulled %s B  bootstraps %g",
				withRate(get("clamshell_repl_pulled_bytes_total"), rate("clamshell_repl_pulled_bytes_total"), "s"),
				get("clamshell_repl_bootstraps_total"))
		}
		fmt.Printf("repl      %s\n", line)
	}
	if _, ok := m.get("clamshell_journal_commit_lag_seconds_count"); ok {
		lag := m.quantiles("clamshell_journal_commit_lag_seconds")
		batch := m.quantiles("clamshell_journal_batch_ops")
		fmt.Printf("journal   commit lag p99 %s, batch p50 %g ops, dirty %s, retained %g\n",
			fmtSeconds(lag["0.99"]), batch["0.5"],
			fmtSeconds(get("clamshell_journal_dirty_age_seconds")),
			get("clamshell_journal_retained_records"))
	}

	for _, transport := range []string{"http", "wire"} {
		var parts []string
		for op := server.Op(0); op < server.NumOps; op++ {
			n, ok := m.get("clamshell_ops_total", "transport", transport, "op", op.String())
			if !ok || n == 0 {
				continue
			}
			parts = append(parts, fmt.Sprintf("%s %g", op.String(), n))
		}
		if len(parts) > 0 {
			fmt.Printf("%-9s %s\n", transport+" ops", strings.Join(parts, "  "))
		}
	}
}

// fmtSeconds renders a duration-in-seconds with a unit fit for its scale.
func fmtSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}
