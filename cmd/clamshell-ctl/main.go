// Command clamshell-ctl is an operator CLI for a running clamshell-server:
// inspect pool and queue health, per-worker stats, spend, task results and
// live metrics; submit tasks; snapshot and restore the server's durable
// state across restarts.
//
// Usage:
//
//	clamshell-ctl [-addr http://localhost:8080] <command> [args]
//
// Commands:
//
//	status                         pool and queue counters
//	workers                        per-worker latency and throughput
//	costs                          accumulated spend by component
//	metrics                        Prometheus-format metrics page
//	top [-watch 2s]                live fabric dashboard (latency, backlog, lag)
//	result -task <id>              task state and consensus labels
//	consensus [-estimator E]       cross-task consensus (majority | em | kos)
//	submit -records a,b,c [-classes N] [-quorum K]
//	                               enqueue one task, print its id
//	promote                        promote a journal-shipping follower to primary
//	snapshot [-o file]             download durable state (default stdout)
//	restore -i file                upload durable state
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/clamshell/clamshell/internal/server"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	c := server.NewClient(*addr)
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "status":
		err = runStatus(c)
	case "workers":
		err = runWorkers(c)
	case "costs":
		err = runCosts(c)
	case "metrics":
		err = runMetrics(c)
	case "top":
		err = runTop(c, args)
	case "result":
		err = runResult(c, args)
	case "consensus":
		err = runConsensus(c, args)
	case "submit":
		err = runSubmit(c, args)
	case "promote":
		err = runPromote(c)
	case "snapshot":
		err = runSnapshot(c, args)
	case "restore":
		err = runRestore(c, args)
	default:
		fmt.Fprintf(os.Stderr, "clamshell-ctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "clamshell-ctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: clamshell-ctl [-addr URL] <command> [args]

commands:
  status                                  pool and queue counters
  workers                                 per-worker latency and throughput
  costs                                   accumulated spend by component
  metrics                                 Prometheus-format metrics page
  top      [-watch 2s]                    live fabric dashboard (latency, backlog, lag)
  result   -task <id>                     task state and consensus labels
  consensus [-estimator majority|em|kos]  cross-task consensus + worker scores
  submit   -records a,b,c [-classes N] [-quorum K]
  promote                                 promote a journal-shipping follower to primary
  snapshot [-o file]                      download durable state
  restore  -i file                        upload durable state
`)
}

func runStatus(c *server.Client) error {
	st, err := c.Status()
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-12s %d\n", k, st[k])
	}
	return nil
}

func runWorkers(c *server.Client) error {
	ws, err := c.Workers()
	if err != nil {
		return err
	}
	fmt.Printf("%-5s %-16s %-10s %-14s %-8s\n", "id", "name", "completed", "mean s/record", "working")
	for _, w := range ws {
		fmt.Printf("%-5d %-16s %-10d %-14.2f %-8v\n",
			w.ID, w.Name, w.Completed, w.MeanPerRec, w.Working)
	}
	return nil
}

func runCosts(c *server.Client) error {
	costs, err := c.Costs()
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(costs))
	for k := range costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-24s $%.4f\n", k, costs[k])
	}
	return nil
}

func runMetrics(c *server.Client) error {
	body, err := c.Metricsz()
	if err != nil {
		return err
	}
	fmt.Print(body)
	return nil
}

func runResult(c *server.Client, args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	task := fs.Int("task", 0, "task id")
	fs.Parse(args)
	if *task == 0 {
		return fmt.Errorf("result: -task is required")
	}
	st, err := c.Result(*task)
	if err != nil {
		return err
	}
	fmt.Printf("task %d: %s (%d answers, %d active)\n", st.ID, st.State, st.Answers, st.Active)
	if st.State == "complete" {
		for i, rec := range st.Records {
			fmt.Printf("  %-30q -> %d\n", rec, st.Consensus[i])
		}
	}
	return nil
}

func runConsensus(c *server.Client, args []string) error {
	fs := flag.NewFlagSet("consensus", flag.ExitOnError)
	estimator := fs.String("estimator", "majority", "majority | em | kos")
	fs.Parse(args)
	res, err := c.Consensus(*estimator)
	if err != nil {
		return err
	}
	taskIDs := make([]int, 0, len(res.Labels))
	for id := range res.Labels {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)
	fmt.Printf("estimator: %s (%d tasks with votes)\n", res.Estimator, len(taskIDs))
	for _, id := range taskIDs {
		fmt.Printf("  task %-5d -> %v\n", id, res.Labels[id])
	}
	if len(res.WorkerScores) > 0 {
		workerIDs := make([]int, 0, len(res.WorkerScores))
		for id := range res.WorkerScores {
			workerIDs = append(workerIDs, id)
		}
		sort.Ints(workerIDs)
		fmt.Println("worker scores (em: accuracy; kos: reliability, negative = adversarial):")
		for _, id := range workerIDs {
			fmt.Printf("  worker %-4d %+.3f\n", id, res.WorkerScores[id])
		}
	}
	return nil
}

func runPromote(c *server.Client) error {
	shards, err := c.Promote()
	if err != nil {
		return err
	}
	fmt.Printf("promoted: now primary over %d shard(s)\n", shards)
	return nil
}

func runSubmit(c *server.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	records := fs.String("records", "", "comma-separated record payloads")
	classes := fs.Int("classes", 2, "number of label classes")
	quorum := fs.Int("quorum", 1, "answers required per task")
	fs.Parse(args)
	if *records == "" {
		return fmt.Errorf("submit: -records is required")
	}
	ids, err := c.SubmitTasks([]server.TaskSpec{{
		Records: strings.Split(*records, ","),
		Classes: *classes,
		Quorum:  *quorum,
	}})
	if err != nil {
		return err
	}
	fmt.Printf("task %d submitted\n", ids[0])
	return nil
}

func runSnapshot(c *server.Client, args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	data, err := c.Snapshot()
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Println(string(data))
		return nil
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot written to %s (%d bytes)\n", *out, len(data))
	return nil
}

func runRestore(c *server.Client, args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	in := fs.String("i", "", "snapshot file")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("restore: -i is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if err := c.Restore(data); err != nil {
		return err
	}
	fmt.Println("restored")
	return nil
}
