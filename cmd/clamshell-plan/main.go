// Command clamshell-plan runs the Problem 1 planner from flags: it sweeps
// candidate pool sizes and pool/batch ratios over the simulator, scores
// each configuration under the objective βl + (1−β)c, and prints the
// guidance table with the cost/latency Pareto frontier marked.
//
// Usage:
//
//	clamshell-plan [-beta 0.5] [-tasks 100] [-group 5] [-quorum 1]
//	               [-pools 5,10,15,20,30] [-ratios 0.75,1] [-trials 3]
//	               [-population live|medical|bimodal] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/clamshell/clamshell/internal/core"
	"github.com/clamshell/clamshell/internal/optimizer"
	"github.com/clamshell/clamshell/internal/straggler"
	"github.com/clamshell/clamshell/internal/worker"
)

func main() {
	var (
		beta    = flag.Float64("beta", 0.5, "speed vs cost preference in [0,1]: 1 = all speed")
		tasks   = flag.Int("tasks", 100, "tasks in the workload")
		group   = flag.Int("group", 5, "records per task (Ng)")
		quorum  = flag.Int("quorum", 1, "answers required per task")
		pools   = flag.String("pools", "5,10,15,20,30", "candidate pool sizes, comma-separated")
		ratios  = flag.String("ratios", "0.75,1", "candidate pool/batch ratios, comma-separated")
		trials  = flag.Int("trials", 3, "simulations per candidate")
		popName = flag.String("population", "live", "worker market: live | medical | bimodal")
		seed    = flag.Int64("seed", 42, "base random seed")
	)
	flag.Parse()

	poolSizes, err := parseInts(*pools)
	if err != nil {
		fatal("parsing -pools: %v", err)
	}
	ratioVals, err := parseFloats(*ratios)
	if err != nil {
		fatal("parsing -ratios: %v", err)
	}
	pop, err := population(*popName)
	if err != nil {
		fatal("%v", err)
	}

	g := optimizer.Plan(optimizer.Params{
		Base: core.Config{
			Seed:       *seed,
			NumTasks:   *tasks,
			GroupSize:  *group,
			Quorum:     *quorum,
			Retainer:   true,
			Population: pop,
			Straggler:  straggler.Config{Enabled: true},
		},
		Beta:      *beta,
		PoolSizes: poolSizes,
		Ratios:    ratioVals,
		Trials:    *trials,
	})
	g.Format(os.Stdout)
	best := g.Best()
	fmt.Printf("\nrecommendation: p=%d at R=%.2f (expect %v +/- %v, %s)\n",
		best.PoolSize, best.Ratio,
		best.Latency.Round(time.Second), best.LatencyStd.Round(time.Second), best.Cost)
}

func population(name string) (func(*rand.Rand) worker.Population, error) {
	switch name {
	case "live":
		return worker.Live, nil
	case "medical":
		return worker.Medical, nil
	case "bimodal":
		return func(rng *rand.Rand) worker.Population {
			return worker.Bimodal(rng, 0.6, 3*time.Second, 15*time.Second)
		}, nil
	default:
		return nil, fmt.Errorf("unknown population %q (want live, medical or bimodal)", name)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clamshell-plan: "+format+"\n", args...)
	os.Exit(1)
}
