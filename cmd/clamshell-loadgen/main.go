// Command clamshell-loadgen hammers a retainer-pool fabric with a mixed
// live workload: concurrent clients submitting labeling tasks and
// concurrent workers joining, heartbeating, polling and answering — the
// traffic shape the sharded fabric exists to absorb. Point it at a running
// clamshell-server with -url, or let it spin up an in-process fabric
// (-shards) to measure raw routing throughput without network noise.
//
// Usage:
//
//	clamshell-loadgen -shards 8 -workers 64 -clients 8 -tasks 5000
//	clamshell-loadgen -shards 8 -transport wire -workers 64 -tasks 5000
//	clamshell-loadgen -url http://localhost:8080 -workers 32 -duration 30s
//	clamshell-loadgen -url http://localhost:8080 -transport wire \
//	    -wire-addr localhost:9090 -workers 64 -tasks 10000
//
// With -transport wire the hot ops (join, enqueue, fetch, submit,
// heartbeat, leave) ride the binary wire protocol — one persistent TCP
// connection per simulated worker — while completion watching and the
// final accounting stay on JSON/HTTP, mirroring a production split. The
// in-process mode spins up both listeners itself; against a remote server
// point -wire-addr at its -listen-wire address.
//
// The run ends when every submitted task has a full quorum of answers (or
// -duration elapses) and prints the achieved op throughput and the
// server-side cost accounting.
package main

import (
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"net"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/clamshell/clamshell/internal/fabric"
	"github.com/clamshell/clamshell/internal/hybrid"
	"github.com/clamshell/clamshell/internal/retry"
	"github.com/clamshell/clamshell/internal/server"
	"github.com/clamshell/clamshell/internal/wire"
)

// hotClient is the op surface the generators drive; *server.Client (HTTP)
// and *wire.Client both satisfy it.
type hotClient interface {
	Join(name string) (int, error)
	Heartbeat(workerID int) error
	Leave(workerID int) error
	SubmitTasks(tasks []server.TaskSpec) ([]int, error)
	FetchTask(workerID int) (server.Assignment, bool, error)
	Submit(workerID, taskID int, labels []int) (accepted, terminated bool, err error)
}

// pairClient is the optional coalescing surface: *wire.Client batches a
// submit and the next fetch into one v2 frame, halving round trips on a
// busy worker; HTTP clients fall back to two requests.
type pairClient interface {
	SubmitAndFetch(workerID, taskID int, labels []int) (accepted, terminated bool, next server.Assignment, ok bool, err error)
}

func main() {
	url := flag.String("url", "", "target server (empty = in-process fabric)")
	transport := flag.String("transport", "http", "hot-op transport: http or wire")
	wireAddr := flag.String("wire-addr", "", "wire-protocol address of the target server (with -url and -transport wire)")
	shards := flag.Int("shards", 4, "shards for the in-process fabric")
	workers := flag.Int("workers", 32, "concurrent pool workers")
	clients := flag.Int("clients", 4, "concurrent task submitters")
	tasks := flag.Int("tasks", 2000, "total tasks to submit")
	backlog := flag.Int("backlog", 0, "priority-0 fill tasks pre-loaded as a standing backlog")
	records := flag.Int("records", 3, "records per task")
	classes := flag.Int("classes", 2, "label classes")
	quorum := flag.Int("quorum", 1, "answers required per task")
	duration := flag.Duration("duration", time.Minute, "hard deadline for the run")
	hybridLoad := flag.Bool("hybrid", false, "emit feature-carrying tasks answered by a 90%-accurate simulated crowd (the in-process fabric also runs the learning plane)")
	flag.Parse()
	if *clients < 1 {
		*clients = 1
	}
	if *workers < 1 {
		*workers = 1
	}

	base := *url
	if base == "" {
		fab := fabric.New(server.Config{WorkerTimeout: time.Hour}, *shards)
		ts := httptest.NewServer(fab)
		defer ts.Close()
		base = ts.URL
		log.Printf("in-process fabric: %d shard(s) at %s", *shards, base)
		if *hybridLoad {
			plane := fab.EnableHybrid(hybrid.Config{RelabelInterval: time.Second})
			defer plane.Close()
			log.Printf("hybrid learning plane enabled")
		}
		if *transport == "wire" {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatalf("wire listener: %v", err)
			}
			defer l.Close()
			go wire.NewServer(fab).Serve(l)
			*wireAddr = l.Addr().String()
			log.Printf("in-process wire listener at %s", *wireAddr)
		}
	}

	// newHotClient opens one hot-op connection per generator goroutine:
	// HTTP clients share the default transport's pool; wire clients each
	// hold a persistent connection.
	newHotClient := func() hotClient {
		switch *transport {
		case "http":
			return server.NewClient(base)
		case "wire":
			if *wireAddr == "" {
				log.Fatal("-transport wire needs -wire-addr (or the in-process fabric)")
			}
			cl, err := wire.Dial(*wireAddr)
			if err != nil {
				log.Fatalf("wire dial: %v", err)
			}
			return cl
		default:
			log.Fatalf("unknown -transport %q (want http or wire)", *transport)
			return nil
		}
	}

	// Standing backlog: passive priority-0 fill pre-loaded before the run.
	// The run's tasks are submitted at priority ≥ 1 and outrank it, so the
	// backlog stresses the dispatch index on every hand-out decision and is
	// only drained once the foreground work is exhausted.
	if *backlog > 0 {
		pre := newHotClient()
		for n := 0; n < *backlog; {
			batch := min(200, *backlog-n)
			specs := make([]server.TaskSpec, batch)
			for i := range specs {
				recs := make([]string, *records)
				for j := range recs {
					recs[j] = "backlog-t" + strconv.Itoa(n+i) + "-r" + strconv.Itoa(j)
				}
				specs[i] = server.TaskSpec{Records: recs, Classes: *classes, Quorum: *quorum}
			}
			if _, err := pre.SubmitTasks(specs); err != nil {
				log.Fatalf("backlog submit: %v", err)
			}
			n += batch
		}
		log.Printf("standing backlog: %d priority-0 tasks", *backlog)
	}

	var (
		submitted, accepted, terminated, fetches, empties atomic.Int64
		wireReconnects                                    atomic.Uint64
		done                                              atomic.Bool
	)
	stopCh := make(chan struct{}) // closed with done: aborts reconnect backoff
	deadline := time.Now().Add(*duration)
	start := time.Now()

	// redial replaces a poisoned wire connection under backoff (the
	// clamshell_wire_reconnects_total series, reported in the final stats),
	// so the generators ride out a server restart or failover mid-run.
	var redial func(seed int64) (*wire.Client, error)
	if *transport == "wire" {
		redial = func(seed int64) (*wire.Client, error) {
			policy := retry.Policy{Base: 50 * time.Millisecond, Cap: 2 * time.Second, Jitter: 0.5, Seed: uint64(seed)}
			var nc *wire.Client
			err := policy.Do(stopCh, func() error {
				cl, err := wire.Dial(*wireAddr)
				if err != nil {
					return err
				}
				nc = cl
				return nil
			})
			if err != nil {
				return nil, err
			}
			wireReconnects.Add(1)
			return nc, nil
		}
	}

	// Foreground task ids, appended by clients as batches land. The
	// completion watcher checks these individually — the status endpoint's
	// complete counter also counts opportunistically drained backlog tasks,
	// so it cannot tell when the foreground budget itself is done.
	var (
		fgMu sync.Mutex
		fg   []int
	)

	// Clients: split the task budget and submit in batches.
	var cg sync.WaitGroup
	perClient := *tasks / *clients
	for c := 0; c < *clients; c++ {
		cg.Add(1)
		go func(c int) {
			defer cg.Done()
			cl := newHotClient()
			rng := rand.New(rand.NewSource(int64(c)))
			refresh := func(cause error) bool {
				if redial == nil || !errors.Is(cause, wire.ErrPoisoned) || done.Load() {
					return false
				}
				nc, err := redial(int64(c))
				if err != nil {
					return false
				}
				if old, ok := cl.(*wire.Client); ok {
					old.Close()
				}
				cl = nc
				return true
			}
			budget := perClient
			if c == 0 {
				budget += *tasks % *clients
			}
			for n := 0; n < budget && !done.Load(); {
				batch := min(50, budget-n)
				specs := make([]server.TaskSpec, batch)
				for i := range specs {
					recs := make([]string, *records)
					for j := range recs {
						recs[j] = "c" + strconv.Itoa(c) + "-t" + strconv.Itoa(n+i) + "-r" + strconv.Itoa(j)
					}
					// Priority ≥ 1: foreground work always outranks the
					// standing backlog's priority-0 fill.
					specs[i] = server.TaskSpec{Records: recs, Classes: *classes, Quorum: *quorum, Priority: 1 + (n+i)%3}
					if *hybridLoad {
						specs[i].Features = featuresFor(recs, *classes, rng)
					}
				}
				// On a poisoned connection the batch is retried after the
				// re-dial; if the lost ack had in fact applied, the rerun
				// over-submits — acceptable in a load generator, never in a
				// production client (the wire transport is at-most-once).
				ids, err := cl.SubmitTasks(specs)
				for err != nil && refresh(err) {
					ids, err = cl.SubmitTasks(specs)
				}
				if err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
				fgMu.Lock()
				fg = append(fg, ids...)
				fgMu.Unlock()
				submitted.Add(int64(batch))
				n += batch
			}
		}(c)
	}

	// Workers: join, then poll/answer until the run ends.
	var wg sync.WaitGroup
	for wkr := 0; wkr < *workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			cl := newHotClient()
			wrng := rand.New(rand.NewSource(1000 + int64(wkr)))
			id, err := cl.Join(fmt.Sprintf("loadgen-%d", wkr))
			if err != nil {
				log.Printf("worker %d join: %v", wkr, err)
				return
			}
			defer func() { cl.Leave(id) }()
			pc, coalesce := cl.(pairClient)
			// refresh replaces a poisoned wire connection and rejoins:
			// sessions never survive the far side of a reconnect, so the
			// worker continues under a fresh id and its in-flight
			// assignment falls back to the queue.
			refresh := func(cause error) bool {
				if redial == nil || !errors.Is(cause, wire.ErrPoisoned) || done.Load() {
					return false
				}
				nc, err := redial(1000 + int64(wkr))
				if err != nil {
					return false
				}
				if old, ok := cl.(*wire.Client); ok {
					old.Close()
				}
				cl = nc
				pc, coalesce = cl.(pairClient)
				id, err = cl.Join(fmt.Sprintf("loadgen-%d", wkr))
				return err == nil
			}
			idle := 0
			var a server.Assignment
			var have bool
			for !done.Load() {
				if !have {
					var err error
					a, have, err = cl.FetchTask(id)
					fetches.Add(1)
					if err != nil {
						if refresh(err) {
							continue
						}
						return // retired or server gone
					}
					if !have {
						empties.Add(1)
						idle++
						if idle%100 == 0 {
							cl.Heartbeat(id)
						}
						time.Sleep(time.Millisecond)
						continue
					}
				}
				idle = 0
				labels := make([]int, len(a.Records))
				for i := range labels {
					if *hybridLoad {
						// A 90%-accurate crowd member: the ground truth is a
						// content hash both the submitter and the worker can
						// compute, so answers are coherent across the pool
						// and the learning plane has a signal to converge on.
						labels[i] = trueClass(a.Records[i], *classes)
						if wrng.Float64() >= 0.9 {
							labels[i] = (labels[i] + 1) % *classes
						}
					} else {
						labels[i] = (id + a.TaskID + i) % *classes
					}
				}
				var acc, term bool
				var err error
				if coalesce {
					// One frame carries the answer and the next fetch.
					acc, term, a, have, err = pc.SubmitAndFetch(id, a.TaskID, labels)
					fetches.Add(1)
				} else {
					acc, term, err = cl.Submit(id, a.TaskID, labels)
					have = false
				}
				if err != nil {
					if refresh(err) {
						have = false
						continue
					}
					return
				}
				if acc {
					accepted.Add(1)
				}
				if term {
					terminated.Add(1)
				}
			}
		}(wkr)
	}

	// Watch for completion: every foreground task individually complete
	// (the backlog, when present, drains opportunistically after the
	// foreground by priority order and is not awaited). The cursor only
	// advances, so each task is polled until complete and then never again.
	status := server.NewClient(base)
	cursor := 0
	for time.Now().Before(deadline) {
		fgMu.Lock()
		pending := append([]int(nil), fg[cursor:]...)
		total := len(fg)
		fgMu.Unlock()
		for _, id := range pending {
			st, err := status.Result(id)
			if err != nil || st.State != "complete" {
				break
			}
			cursor++
		}
		if total >= *tasks && cursor >= total {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	done.Store(true)
	close(stopCh)
	cg.Wait()
	wg.Wait()
	elapsed := time.Since(start)

	st, _ := status.Status()
	costs, _ := status.Costs()
	fmt.Printf("elapsed            %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("tasks submitted    %d\n", submitted.Load())
	fmt.Printf("tasks complete     %d\n", st["complete"])
	fmt.Printf("answers accepted   %d\n", accepted.Load())
	fmt.Printf("answers terminated %d\n", terminated.Load())
	fmt.Printf("fetches (empty)    %d (%d)\n", fetches.Load(), empties.Load())
	if n := wireReconnects.Load(); n > 0 {
		fmt.Printf("wire reconnects    %d\n", n)
	}
	ops := float64(submitted.Load()+fetches.Load()+accepted.Load()+terminated.Load()) / elapsed.Seconds()
	fmt.Printf("throughput         %.0f ops/s\n", ops)
	fmt.Printf("total cost         $%.4f\n", costs["total_dollars"])
}

// trueClass is a record's ground-truth label: a stable content hash, so
// submitters (feature generation) and workers (answers) agree on it
// without sharing state.
func trueClass(record string, classes int) int {
	h := fnv.New32a()
	h.Write([]byte(record))
	return int(h.Sum32()>>1) % classes
}

// featuresFor draws one 2-d feature vector per record around its class
// center — the separable-cluster workload the learning plane converges on
// quickly, so a -hybrid run exercises the full auto-finalize loop.
func featuresFor(recs []string, classes int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, len(recs))
	for i, rec := range recs {
		y := float64(trueClass(rec, classes))
		out[i] = []float64{4*y + rng.NormFloat64()*0.5, -4*y + rng.NormFloat64()*0.5}
	}
	return out
}
