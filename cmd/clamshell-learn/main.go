// Command clamshell-learn runs a full CLAMShell learning experiment from
// flags: pick (or load) a dataset, choose a strategy and stack, label
// through the simulated crowd, and report the learning curve and the final
// label assignment (crowd labels + model imputations).
//
// Usage:
//
//	clamshell-learn [-dataset mnistlike|cifarlike|guyon] [-csv file]
//	                [-strategy hybrid|active|passive] [-pool 20]
//	                [-labels 500] [-stack clamshell|base-r|base-nr]
//	                [-curve out.csv] [-out labels.csv] [-seed 42]
//
// -csv loads a dataset in the interchange format (feature columns then an
// integer label column; see internal/learn's dataset CSV docs) instead of
// a builtin generator. -curve writes the accuracy-over-time series;
// -out writes the final label per training point and whether it came from
// the crowd or the model.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"github.com/clamshell/clamshell/internal/core"
	"github.com/clamshell/clamshell/internal/learn"
)

func main() {
	var (
		dataset  = flag.String("dataset", "mnistlike", "builtin dataset: mnistlike | cifarlike | guyon")
		csvPath  = flag.String("csv", "", "load dataset from a CSV file instead (features..., label)")
		n        = flag.Int("n", 2000, "points to generate for builtin datasets")
		strategy = flag.String("strategy", "hybrid", "label acquisition: hybrid | active | passive")
		pool     = flag.Int("pool", 20, "retainer pool size")
		labels   = flag.Int("labels", 500, "label budget")
		stack    = flag.String("stack", "clamshell", "technique stack: clamshell | base-r | base-nr")
		curve    = flag.String("curve", "", "write the accuracy-over-time curve CSV here")
		out      = flag.String("out", "", "write the final label assignment CSV here")
		seed     = flag.Int64("seed", 42, "base random seed")
	)
	flag.Parse()

	d, err := loadDataset(*dataset, *csvPath, *n, *seed)
	if err != nil {
		fatal("%v", err)
	}

	var cfg core.LearnConfig
	switch *stack {
	case "clamshell":
		cfg = core.CLAMShellConfig(*seed, *pool, d)
	case "base-r":
		cfg = core.BaseRConfig(*seed, *pool, d)
	case "base-nr":
		cfg = core.BaseNRConfig(*seed, *pool, d)
	default:
		fatal("unknown stack %q (want clamshell, base-r or base-nr)", *stack)
	}
	switch *strategy {
	case "hybrid":
		cfg.Strategy = learn.Hybrid
	case "active":
		cfg.Strategy = learn.Active
	case "passive":
		cfg.Strategy = learn.Passive
	default:
		fatal("unknown strategy %q (want hybrid, active or passive)", *strategy)
	}
	cfg.TargetLabels = *labels

	res := core.RunLearning(cfg)

	fmt.Printf("dataset: %d points, %d features, %d classes\n", d.Len(), d.Features, d.Classes)
	fmt.Printf("stack %s, strategy %s, pool %d, budget %d labels\n",
		*stack, cfg.Strategy, *pool, *labels)
	fmt.Printf("crowd labels: %d in %v (%s)\n",
		res.CrowdLabeled, res.Run.TotalTime.Round(time.Second), res.Run.Cost.Total())
	fmt.Printf("final held-out accuracy: %.3f\n", res.FinalAccuracy)
	if res.CrowdLabeled < len(res.Labels) {
		fmt.Printf("imputed %d labels at %.3f accuracy against ground truth\n",
			len(res.Labels)-res.CrowdLabeled, res.ImputedAccuracy)
	}

	if *curve != "" {
		if err := writeCurve(*curve, res); err != nil {
			fatal("writing curve: %v", err)
		}
		fmt.Printf("learning curve written to %s (%d points)\n", *curve, len(res.Curve))
	}
	if *out != "" {
		if err := writeLabels(*out, res); err != nil {
			fatal("writing labels: %v", err)
		}
		fmt.Printf("label assignment written to %s (%d rows)\n", *out, len(res.Labels))
	}
}

func loadDataset(name, csvPath string, n int, seed int64) (*learn.Dataset, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return learn.ReadDatasetCSV(f)
	}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "mnistlike":
		return learn.MNISTLike(rng, n), nil
	case "cifarlike":
		return learn.CIFARLike(rng, n), nil
	case "guyon":
		return learn.Guyon(rng, learn.GuyonConfig{
			N: n, Features: 20, Informative: 14, Classes: 2, ClassSep: 1.5,
		}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want mnistlike, cifarlike or guyon, or use -csv)", name)
	}
}

func writeCurve(path string, res *core.LearnResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"seconds", "labels", "accuracy"}); err != nil {
		return err
	}
	for _, p := range res.Curve {
		rec := []string{
			strconv.FormatFloat(p.T.Seconds(), 'f', 3, 64),
			strconv.Itoa(p.Labels),
			strconv.FormatFloat(p.Accuracy, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeLabels(path string, res *core.LearnResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"index", "label", "source"}); err != nil {
		return err
	}
	for i, l := range res.Labels {
		src := "model"
		if res.FromCrowd[i] {
			src = "crowd"
		}
		if err := cw.Write([]string{strconv.Itoa(i), strconv.Itoa(l), src}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clamshell-learn: "+format+"\n", args...)
	os.Exit(1)
}
