package clamshell

import (
	"math/rand"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := Config{
		Seed: 1, PoolSize: 10, NumTasks: 40, GroupSize: 5, Retainer: true,
		Straggler:   StragglerConfig{Enabled: true, Policy: Random},
		Maintenance: MaintenanceConfig{Enabled: true, Threshold: 8 * time.Second, UseTermEst: true},
	}
	res := NewEngine(cfg).RunLabeling()
	if res.TotalLabels() != 200 {
		t.Fatalf("labels = %d", res.TotalLabels())
	}
	if res.TotalTime <= 0 || res.Cost.Total() <= 0 {
		t.Fatalf("degenerate run: %v %v", res.TotalTime, res.Cost.Total())
	}
}

func TestIncrementalEngineFlow(t *testing.T) {
	cfg := Config{Seed: 2, PoolSize: 8, GroupSize: 1, Classes: 3, Retainer: true,
		Straggler: StragglerConfig{Enabled: true}}
	e := NewEngine(cfg)
	e.Start()
	for i := 0; i < 3; i++ {
		stat := e.LabelBatch(8)
		if stat.Labels != 8 {
			t.Fatalf("batch %d labels = %d", i, stat.Labels)
		}
	}
	labels, accuracy := e.ConsensusLabels()
	if len(labels) != 24 {
		t.Fatalf("consensus over %d tasks, want 24", len(labels))
	}
	if accuracy < 0.6 {
		t.Fatalf("consensus accuracy = %v", accuracy)
	}
	res := e.Finish()
	if len(res.Batches) != 3 {
		t.Fatalf("batches = %d", len(res.Batches))
	}
}

func TestLearningFlow(t *testing.T) {
	d := Guyon(rand.New(rand.NewSource(3)), GuyonConfig{
		N: 300, Features: 10, Informative: 8, Classes: 2, ClassSep: 2,
	})
	cfg := CLAMShellConfig(4, 10, d)
	cfg.TargetLabels = 120
	res := RunLearning(cfg)
	if res.FinalAccuracy < 0.8 {
		t.Fatalf("accuracy = %v", res.FinalAccuracy)
	}
}

func TestDatasetConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if d := MNISTLike(rng, 20); d.Classes != 10 || d.Features != 784 {
		t.Fatalf("MNISTLike = %+v", d)
	}
	if d := CIFARLike(rng, 20); d.Classes != 2 || d.Features != 3072 {
		t.Fatalf("CIFARLike = %+v", d)
	}
}

func TestPopulationConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, pop := range []Population{
		LivePopulation(rng),
		MedicalPopulation(rng),
		BimodalPopulation(rng, 0.5, time.Second, 10*time.Second),
	} {
		p := pop.Draw()
		if p.Mean <= 0 || p.Accuracy <= 0 {
			t.Fatalf("bad params %+v", p)
		}
	}
}

func TestBaselineConstructorsDiffer(t *testing.T) {
	d := Guyon(rand.New(rand.NewSource(7)), GuyonConfig{N: 100, Features: 6})
	cs, br, nr := CLAMShellConfig(1, 10, d), BaseRConfig(1, 10, d), BaseNRConfig(1, 10, d)
	if cs.Strategy == br.Strategy || br.Retainer == nr.Retainer {
		t.Fatal("baseline configs should differ")
	}
}
