package clamshell

import (
	"io"
	"math/rand"

	"github.com/clamshell/clamshell/internal/learn"
	"github.com/clamshell/clamshell/internal/optimizer"
	"github.com/clamshell/clamshell/internal/quality"
	"github.com/clamshell/clamshell/internal/worker"
)

// This file exports the subsystems beyond the core labeling loop: the
// Problem 1 planner, redundancy-based quality control (majority vote, EM
// and the Karger–Oh–Shah iterative estimator), the uncertainty-criterion
// and classifier choices behind the learning loop, and nonstationary
// worker dynamics.

// PlanParams configures a Problem 1 planning sweep: the run template, the
// speed/cost preference β, and the candidate pool sizes and ratios.
type PlanParams = optimizer.Params

// PlanGuidance is the planner's output: every candidate configuration
// scored under β, sorted best-first, with a Pareto frontier.
type PlanGuidance = optimizer.Guidance

// PlanOption is one evaluated (pool size, ratio) configuration.
type PlanOption = optimizer.Option

// Plan sweeps candidate pool sizes and pool/batch ratios over the
// simulator and scores each under the paper's Problem 1 objective
// βl + (1−β)c — the pool-size guidance promised in §2.2.
func Plan(p PlanParams) *PlanGuidance { return optimizer.Plan(p) }

// FormatGuidance renders planner guidance as an aligned table with Pareto
// options marked.
func FormatGuidance(g *PlanGuidance, w io.Writer) { g.Format(w) }

// WorkerID identifies a worker within a run.
type WorkerID = worker.ID

// Vote is one worker's label for one item, the unit of evidence for the
// quality-control estimators.
type Vote = quality.Vote

// KOSResult is the output of the Karger–Oh–Shah estimator: consensus
// labels and per-worker reliabilities (negative = adversarial).
type KOSResult = quality.KOSResult

// KOS runs the Karger–Oh–Shah iterative message-passing estimator over
// binary votes (the paper's [28]) — far more robust than majority voting
// against spammers and adversaries.
func KOS(votes []Vote, maxIter int, rng *rand.Rand) KOSResult {
	return quality.KOS(votes, maxIter, rng)
}

// EMResult is the output of the EM (Dawid–Skene style) estimator.
type EMResult = quality.EMResult

// EstimateAccuracy runs EM over votes, jointly inferring consensus labels
// and per-worker accuracies.
func EstimateAccuracy(votes []Vote, classes, maxIter int) EMResult {
	return quality.EstimateAccuracy(votes, classes, maxIter)
}

// MajorityLabels applies per-item plurality voting — the baseline the
// other estimators are compared against.
func MajorityLabels(votes []Vote) map[int]int { return quality.MajorityLabels(votes) }

// LabelAccuracy scores estimated labels against ground truth.
func LabelAccuracy(estimated, truth map[int]int) float64 {
	return quality.LabelAccuracy(estimated, truth)
}

// Criterion selects the uncertainty score for active point selection.
type Criterion = learn.Criterion

// Uncertainty criteria for active selection: margin (the paper's), least
// confident, entropy, and query-by-committee vote entropy.
const (
	MarginCriterion    Criterion = learn.MarginCriterion
	LeastConfident     Criterion = learn.LeastConfident
	EntropyCriterion   Criterion = learn.EntropyCriterion
	CommitteeCriterion Criterion = learn.CommitteeCriterion
)

// Classifier is the model interface behind the learning loop.
type Classifier = learn.Classifier

// NewClassifier constructs a model by name: "logistic" (the paper's
// default), "naivebayes", "knn" or "perceptron".
func NewClassifier(name string, features, classes int) Classifier {
	return learn.NewClassifier(name, features, classes)
}

// ModelNames lists the available classifier names.
func ModelNames() []string { return learn.ModelNames() }

// ReadDatasetCSV loads a dataset in the interchange format: feature
// columns followed by an integer class label, with a header row.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) { return learn.ReadDatasetCSV(r) }

// WriteDatasetCSV writes a dataset in the interchange format.
func WriteDatasetCSV(w io.Writer, d *Dataset) error { return learn.WriteDatasetCSV(w, d) }

// AsyncRetrainer continuously retrains a model in a background goroutine
// and publishes immutable snapshots — the live-mode (wall-clock)
// implementation of §5.3's pipelined retraining. Feed it labels with
// Observe, read the latest snapshot with Model, and Close it when done.
type AsyncRetrainer = learn.AsyncRetrainer

// NewAsyncRetrainer starts a background retrainer for the given problem
// shape.
func NewAsyncRetrainer(features, classes int, seed int64) *AsyncRetrainer {
	return learn.NewAsyncRetrainer(features, classes, seed)
}

// WithDynamics wraps a population with nonstationary worker behaviour:
// fatigue (fractional slowdown per completed task) and warmup (initial
// tasks are slower) — the drift that makes continuous pool maintenance
// necessary.
func WithDynamics(pop Population, fatigue float64, warmup int) Population {
	return worker.WithDynamics(pop, fatigue, warmup)
}
